package serve

import (
	"container/list"
	"sync"

	"repro/internal/adt"
	"repro/internal/profile"
)

// timeline is everything the server retains about one container instance:
// identity, lifetime totals, and a bounded ring of its most recent windows.
// Memory per timeline is capped by the ring, memory across timelines by the
// store's LRU — a misbehaving client streaming a million instances evicts
// its own history instead of growing the process.
type timeline struct {
	key      string
	context  string
	instance int
	kind     adt.Kind

	windows    int    // windows ever ingested for this instance
	ops        uint64 // interface invocations those windows covered
	lastSeq    int
	outOfOrder int // windows whose seq did not advance

	// touch is the server-wide recency stamp of the last ingest into this
	// timeline. The list order below is recency within one store; touch is
	// what lets the dashboard merge many per-shard stores into one global
	// most-recently-active order.
	touch uint64

	recent *profile.WindowRing
}

// timelineStore is the bounded per-instance window retention behind
// /v1/profiles: an LRU over instance keys, each holding a fixed-size ring
// of recent windows. All methods are safe for concurrent use.
type timelineStore struct {
	mu          sync.Mutex
	maxInst     int
	ringSize    int
	order       *list.List // front = most recently touched
	items       map[string]*list.Element
	evictions   uint64
	totalWin    uint64
	totalOutOfO uint64
}

func newTimelineStore(maxInstances, ringSize int) *timelineStore {
	return &timelineStore{
		maxInst:  maxInstances,
		ringSize: ringSize,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// addOutcome reports everything one ingest changed, so the caller can keep
// incremental per-kind aggregates (the /v1/rollup state) in lockstep with
// the store: instance creations and evictions move instance counts,
// kind changes are observed migrations.
type addOutcome struct {
	outOfOrder  bool
	isNew       bool     // a timeline was created for this instance
	kindChanged bool     // the instance's backend changed mid-timeline
	prevKind    adt.Kind // valid when kindChanged
	evicted     bool     // a timeline was evicted to make room
	evictedKind adt.Kind // valid when evicted
}

// add ingests one window into its instance's timeline, creating (and, at
// the bound, evicting) as needed, stamping the timeline with the caller's
// recency stamp.
func (s *timelineStore) add(w *profile.WindowRecord, touch uint64) addOutcome {
	key := w.InstanceKey()
	var out addOutcome
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		tl := &timeline{
			key:      key,
			context:  w.Context,
			instance: w.Instance,
			kind:     w.Kind,
			lastSeq:  -1,
			recent:   profile.NewWindowRing(s.ringSize),
		}
		el = s.order.PushFront(tl)
		s.items[key] = el
		out.isNew = true
		if len(s.items) > s.maxInst {
			oldest := s.order.Back()
			s.order.Remove(oldest)
			victim := oldest.Value.(*timeline)
			delete(s.items, victim.key)
			s.evictions++
			out.evicted = true
			out.evictedKind = victim.kind
		}
	} else {
		s.order.MoveToFront(el)
	}
	tl := el.Value.(*timeline)
	tl.touch = touch
	if tl.windows > 0 && w.Seq <= tl.lastSeq {
		tl.outOfOrder++
		s.totalOutOfO++
		out.outOfOrder = true
	}
	if w.Seq > tl.lastSeq {
		tl.lastSeq = w.Seq
	}
	if !out.isNew && w.Kind != tl.kind {
		out.kindChanged = true
		out.prevKind = tl.kind
	}
	tl.windows++
	tl.ops += w.Ops()
	tl.kind = w.Kind
	tl.recent.EmitWindow(w)
	s.totalWin++
	return out
}

// timelineView is a consistent copy of one timeline, for rendering.
type timelineView struct {
	Key        string
	Context    string
	Instance   int
	Kind       adt.Kind
	Windows    int
	Ops        uint64
	OutOfOrder int
	Touch      uint64                 // global recency stamp of the last ingest
	Recent     []profile.WindowRecord // oldest first
}

// views returns a copy of every retained timeline, most recently touched
// first (the order a live dashboard wants: active instances on top).
func (s *timelineStore) views() []timelineView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]timelineView, 0, len(s.items))
	for el := s.order.Front(); el != nil; el = el.Next() {
		tl := el.Value.(*timeline)
		out = append(out, timelineView{
			Key:        tl.key,
			Context:    tl.context,
			Instance:   tl.instance,
			Kind:       tl.kind,
			Windows:    tl.windows,
			Ops:        tl.ops,
			OutOfOrder: tl.outOfOrder,
			Touch:      tl.touch,
			Recent:     tl.recent.Records(),
		})
	}
	return out
}

// len returns the number of retained timelines.
func (s *timelineStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}
