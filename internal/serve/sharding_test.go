package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/profile"
)

// TestShardedAdviseMatchesCLIPlan pins the batched fleet to the sequential
// CLI: with several shards and a batch size smaller than the trace, a
// many-profile request is split across shard batchers and reassembled — and
// the result must still be byte-identical to core.Analyze, order included.
func TestShardedAdviseMatchesCLIPlan(t *testing.T) {
	models := testModels()
	s := New(models, quietConfig(Config{Shards: 4, BatchSize: 3, BatchLinger: 100 * time.Microsecond}))
	url, _ := startServer(t, s)

	var profiles []profile.Profile
	for i := 0; i < 12; i++ {
		profiles = append(profiles, vectorProfile(fmt.Sprintf("fleet/site%d", i), 40+i*25))
	}
	resp, got := postAdvise(t, url, traceBody(t, profiles), "Core2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	want := core.New(models).Analyze(profiles, "Core2")
	if !reflect.DeepEqual(got.Suggestions, want.Suggestions) {
		t.Fatalf("sharded suggestions diverge from CLI:\n got %+v\nwant %+v", got.Suggestions, want.Suggestions)
	}
	if !reflect.DeepEqual(got.Plan, want.Plan()) {
		t.Fatalf("sharded plan diverges from CLI:\n got %+v\nwant %+v", got.Plan, want.Plan())
	}
}

// TestShardedConcurrentStress hammers a multi-shard server from many
// goroutines mixing advise (hot keys shared across workers plus cold
// per-worker keys), profile ingestion, and dashboard reads. Run under -race
// in CI: it exists to prove the per-shard ownership story has no cross-shard
// data races.
func TestShardedConcurrentStress(t *testing.T) {
	s := rulesServer(Config{Shards: 4, BatchSize: 4, BatchLinger: 100 * time.Microsecond, CacheSize: 64})
	url, _ := startServer(t, s)

	hot := traceBody(t, []profile.Profile{vectorProfile("stress/hot", 120)})
	const workers, iters = 8, 10
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < iters; i++ {
				var body []byte
				if i%2 == 0 {
					body = hot // same inference key from every worker
				} else {
					body = traceBody(t, []profile.Profile{vectorProfile(fmt.Sprintf("stress/w%d", w), 60+w*13+i)})
				}
				resp, err := http.Post(url+"/v1/advise?arch=Core2", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("advise status %d", resp.StatusCode)
					return
				}

				win := fmt.Sprintf(`{"context":"stress/inst","kind":0,"instance":%d,"window_seq":%d,"window_start_op":0,"window_end_op":8,"stats":{"count":[0,0,0,0,8,0,0,0,0,0]}}`+"\n", w, i)
				presp, err := http.Post(url+"/v1/profiles?arch=Core2", "application/json", bytes.NewReader([]byte(win)))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, presp.Body)
				presp.Body.Close()
				if presp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("profiles status %d", presp.StatusCode)
					return
				}

				if i%3 == 0 {
					dresp, err := http.Get(url + debugBrainyPath + "?format=json")
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, dresp.Body)
					dresp.Body.Close()
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Every worker ingested into its own instance; all must be retained
	// across the shard fleet.
	if got := s.timelineCount(); got != workers {
		t.Fatalf("retained timelines = %d, want %d", got, workers)
	}
	// Hits + misses add up to one cache lookup per profile advised.
	lookups := s.Metrics().CacheHits.Value() + s.Metrics().CacheMisses.Value()
	if want := uint64(workers * iters); lookups != want {
		t.Fatalf("cache lookups = %d, want %d", lookups, want)
	}
}

// TestDrainFlushesBatchQueues is the zero-loss shutdown contract: requests
// whose inferences sit queued behind a long batch linger when SIGTERM
// arrives must still complete — the drain flips every shard batcher to
// flush-immediately and only stops it after the queue ran dry. No accepted
// request is lost, and Serve reports a clean drain.
func TestDrainFlushesBatchQueues(t *testing.T) {
	// A minute-long linger and a batch bound far above the request count
	// guarantee the queued inferences are still pending when the drain
	// starts — only the drain itself can flush them.
	s := New(testModels(), quietConfig(Config{
		Shards:        2,
		BatchSize:     64,
		BatchLinger:   time.Minute,
		ShutdownGrace: 10 * time.Second,
	}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String()

	const reqs = 6
	type result struct {
		status int
		sugs   int
		err    error
	}
	results := make(chan result, reqs)
	var wg sync.WaitGroup
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct MaxLen per request means distinct inference keys:
			// all six are cache misses that queue on their shards.
			body := traceBody(t, []profile.Profile{vectorProfile(fmt.Sprintf("drain/site%d", i), 100+17*i)})
			resp, err := http.Post(url+"/v1/advise?arch=Core2", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			var out AdviseResponse
			if resp.StatusCode == http.StatusOK {
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					results <- result{err: err}
					return
				}
			} else {
				io.Copy(io.Discard, resp.Body)
			}
			results <- result{status: resp.StatusCode, sugs: len(out.Suggestions)}
		}(i)
	}

	// Wait until every request has missed the cache — i.e. its inference is
	// submitted (or about to be) to a shard queue — then begin the drain.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().CacheMisses.Value() < reqs {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests reached their shard queue", s.Metrics().CacheMisses.Value(), reqs)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the last Submit land in its queue
	cancel()

	wg.Wait()
	close(results)
	for res := range results {
		if res.err != nil {
			t.Fatalf("request lost to shutdown: %v", res.err)
		}
		if res.status != http.StatusOK || res.sugs != 1 {
			t.Fatalf("request lost to shutdown: status=%d suggestions=%d", res.status, res.sugs)
		}
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve = %v, want clean drain", err)
	}
	// Everything the queues accepted was evaluated before the batchers
	// stopped.
	if got := s.Metrics().Inferences.Total(); got != reqs {
		t.Fatalf("inferences after drain = %d, want %d", got, reqs)
	}
}
