package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/workloads/phases"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the dashboard golden file in testdata/")

// phaseWindowStream renders the canonical two-phase workload as a snapshot
// window stream — the same bytes examples/phasedemo -o writes and the CI
// smoke POSTs. Fully deterministic: fixed workload, simulated counters.
func phaseWindowStream(t *testing.T, window int) []byte {
	t.Helper()
	m := machine.New(machine.Core2())
	var buf bytes.Buffer
	exp := profile.NewSnapshotExporter(&buf)
	reg := profile.NewRegistry(m)
	reg.EnableWindows(window, exp)
	c := reg.NewContainer(phases.Original, 8, phases.Context, false)
	phases.Drive(c, phases.Config{})
	reg.FlushWindows()
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func rulesServer(cfg Config) *Server {
	cfg.DriftRules = true
	cfg.DriftWindow = 2
	cfg.DriftHysteresis = 2
	return New(testModels(), quietConfig(cfg))
}

func postProfiles(t *testing.T, url string, body []byte) (*http.Response, ProfilesResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/profiles?arch=Core2", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ProfilesResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding profiles response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, out
}

// TestProfilesIngestAndDrift is the end-to-end ingestion contract: the
// phasedemo stream lands in one timeline, the drift detector flags the
// vector -> hash_set phase change, and every ingestion metric moves.
func TestProfilesIngestAndDrift(t *testing.T) {
	s := rulesServer(Config{})
	url, _ := startServer(t, s)
	stream := phaseWindowStream(t, 64)

	resp, out := postProfiles(t, url, stream)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profiles status = %d", resp.StatusCode)
	}
	wantWindows := len(bytes.Split(bytes.TrimSpace(stream), []byte("\n")))
	if out.Accepted != wantWindows {
		t.Fatalf("accepted %d of %d windows", out.Accepted, wantWindows)
	}
	if out.Instances != 1 || out.OutOfOrder != 0 || out.Unadvised != 0 {
		t.Fatalf("ingestion accounting: %+v", out)
	}
	if len(out.Drift) != 1 {
		t.Fatalf("drift events in batch: %d, want 1", len(out.Drift))
	}
	ev := out.Drift[0]
	if ev.InstanceKey != phases.Context+"#0" || ev.From.String() != "vector" || ev.To.String() != "hash_set" {
		t.Fatalf("drift event: %+v", ev)
	}

	m := s.Metrics()
	if got := m.ProfileWindows.Value(); got != uint64(wantWindows) {
		t.Fatalf("brainy_profile_windows_total = %d", got)
	}
	if got := m.DriftEvents.Value(); got != 1 {
		t.Fatalf("brainy_drift_events_total = %d", got)
	}
	// The window-size histogram saw every window; its exact extremes are
	// the full window size and the flushed tail.
	hs := m.WindowOps.Snapshot()
	if hs.Count != uint64(wantWindows) || hs.Max != 64 || hs.Min <= 0 || hs.Min > 64 {
		t.Fatalf("window-size histogram: count=%d min=%g max=%g", hs.Count, hs.Min, hs.Max)
	}
	if got := m.TimelineInstances.Value(); got != 1 {
		t.Fatalf("brainy_profile_instances = %g", got)
	}

	// The same counters appear on the exposition page, min/max included.
	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"brainy_drift_events_total 1",
		"brainy_profile_window_ops_max 64",
		"brainy_profile_instances 1",
	} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("metrics page missing %q:\n%s", want, page)
		}
	}
}

// TestProfilesStateAccumulatesAcrossRequests: a live application POSTs its
// windows in batches; drift confirmation must work across request
// boundaries exactly as it does within one.
func TestProfilesStateAccumulatesAcrossRequests(t *testing.T) {
	s := rulesServer(Config{})
	url, _ := startServer(t, s)
	lines := bytes.SplitAfter(bytes.TrimSpace(phaseWindowStream(t, 64)), []byte("\n"))

	var events int
	for _, ln := range lines { // one POST per window: the extreme case
		resp, out := postProfiles(t, url, ln)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		events += len(out.Drift)
	}
	if events != 1 {
		t.Fatalf("drift events across batched ingestion: %d, want 1", events)
	}
	if got := s.Metrics().DriftEvents.Value(); got != 1 {
		t.Fatalf("counter = %d", got)
	}
}

func TestProfilesValidation(t *testing.T) {
	s := rulesServer(Config{MaxProfiles: 5})
	url, _ := startServer(t, s)

	resp, err := http.Get(url + "/v1/profiles")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d", resp.StatusCode)
	}

	for name, body := range map[string]string{
		"empty":     "",
		"garbage":   "not json at all",
		"truncated": `{"context":"a","kind":0,"window_seq":0`, /* no closing brace */
	} {
		resp, _ := postProfiles(t, url, []byte(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s body: status = %d, want 400", name, resp.StatusCode)
		}
	}

	// Record bound: the stream has far more than 5 windows.
	resp2, _ := postProfiles(t, url, phaseWindowStream(t, 16))
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-bound batch: status = %d, want 400", resp2.StatusCode)
	}
}

// TestTimelineLRUBound: the instance store caps memory by evicting the
// least recently touched timeline, and the eviction is visible in metrics
// and absent from the dashboard. Shards is pinned to 1 so the global bound
// is exact — with N shards each holds ceil(max/N) and eviction order is
// per-shard.
func TestTimelineLRUBound(t *testing.T) {
	s := rulesServer(Config{MaxInstances: 2, TimelineWindows: 4, Shards: 1})
	url, _ := startServer(t, s)

	for _, inst := range []string{"0", "1", "2"} {
		w := `{"context":"many/instances","kind":0,"instance":` + inst +
			`,"window_seq":0,"window_start_op":0,"window_end_op":8,"stats":{"count":[0,0,0,0,8,0,0,0,0,0]}}` + "\n"
		if resp, _ := postProfiles(t, url, []byte(w)); resp.StatusCode != http.StatusOK {
			t.Fatalf("instance %s: status = %d", inst, resp.StatusCode)
		}
	}
	if got := s.timelineCount(); got != 2 {
		t.Fatalf("retained timelines = %d, want 2", got)
	}
	if got := s.Metrics().TimelineEvictions.Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	var dash DashboardResponse
	dresp, err := http.Get(url + debugBrainyPath + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(dresp.Body).Decode(&dash); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	keys := map[string]bool{}
	for _, row := range dash.Rows {
		keys[row.Key] = true
	}
	if keys["many/instances#0"] || !keys["many/instances#1"] || !keys["many/instances#2"] {
		t.Fatalf("LRU kept the wrong timelines: %v", keys)
	}
}

func TestProfilesOutOfOrderCounted(t *testing.T) {
	s := rulesServer(Config{})
	url, _ := startServer(t, s)
	w := `{"context":"ooo","kind":0,"instance":0,"window_seq":3,"window_start_op":0,"window_end_op":8}` + "\n"
	postProfiles(t, url, []byte(w))
	_, out := postProfiles(t, url, []byte(w)) // same seq again: a replay
	if out.OutOfOrder != 1 {
		t.Fatalf("out_of_order = %d, want 1", out.OutOfOrder)
	}
	if got := s.Metrics().WindowsOutOfOrder.Value(); got != 1 {
		t.Fatalf("counter = %d, want 1", got)
	}
}

// TestProfilesSkippedWindowsCounted: a window whose kind has no trained
// model still lands in its timeline, but the lost advisory coverage must be
// visible — in the response, on /metrics, and on the dashboard header.
func TestProfilesSkippedWindowsCounted(t *testing.T) {
	// Model-backed server with only a vector model: list windows cannot be
	// advised.
	s := New(testModels(), quietConfig(Config{}))
	url, _ := startServer(t, s)
	w := `{"context":"skip","kind":1,"instance":0,"window_seq":0,"window_start_op":0,"window_end_op":8,"stats":{"count":[0,0,0,0,8,0,0,0,0,0]}}` + "\n"
	resp, out := postProfiles(t, url, []byte(w))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Accepted != 1 || out.Unadvised != 1 {
		t.Fatalf("accounting: %+v", out)
	}
	if got := s.Metrics().DriftSkipped.Value(); got != 1 {
		t.Fatalf("brainy_drift_skipped_windows_total = %d, want 1", got)
	}
	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(page), "brainy_drift_skipped_windows_total 1") {
		t.Fatalf("metrics page missing skip counter:\n%s", page)
	}
	dresp, err := http.Get(url + debugBrainyPath)
	if err != nil {
		t.Fatal(err)
	}
	dash, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if !strings.Contains(string(dash), "drift-skipped 1") {
		t.Fatalf("dashboard missing drift-skipped count:\n%s", dash)
	}
}

// TestDashboardGolden pins the text dashboard byte-for-byte for a fixed
// ingestion sequence. Regenerate with:
//
//	go test ./internal/serve -run TestDashboardGolden -update-golden
func TestDashboardGolden(t *testing.T) {
	s := rulesServer(Config{})
	url, _ := startServer(t, s)
	if resp, _ := postProfiles(t, url, phaseWindowStream(t, 64)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}

	dresp, err := http.Get(url + debugBrainyPath)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if ct := dresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	goldenPath := filepath.Join("testdata", "dashboard.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("dashboard drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestDashboardFormats: the JSON variant feeds brainy-top, the HTML variant
// renders for browsers, and unknown formats are rejected.
func TestDashboardFormats(t *testing.T) {
	s := rulesServer(Config{})
	url, _ := startServer(t, s)
	postProfiles(t, url, phaseWindowStream(t, 64))

	var dash DashboardResponse
	jresp, err := http.Get(url + debugBrainyPath + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(jresp.Body).Decode(&dash); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if dash.Instances != 1 || len(dash.Rows) != 1 {
		t.Fatalf("dashboard instances: %+v", dash)
	}
	row := dash.Rows[0]
	if row.Key != phases.Context+"#0" || !row.Advised || !row.Drifted {
		t.Fatalf("row: %+v", row)
	}
	if row.Initial != "vector" || row.Current != "hash_set" {
		t.Fatalf("advice %s -> %s", row.Initial, row.Current)
	}
	if len(row.Timeline) == 0 || len(row.Mix) != len(row.Timeline) {
		t.Fatalf("timeline/mix: %d cells, mix %q", len(row.Timeline), row.Mix)
	}
	// The mix string itself shows the phase change: appends then finds.
	if !strings.Contains(row.Mix, "a") || !strings.Contains(row.Mix, "f") ||
		strings.LastIndex(row.Mix, "a") > strings.Index(row.Mix, "f") {
		t.Fatalf("mix %q does not read as a phase change", row.Mix)
	}

	hresp, err := http.Get(url + debugBrainyPath + "?format=html")
	if err != nil {
		t.Fatal(err)
	}
	html, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(string(html), "<table>") || !strings.Contains(string(html), phases.Context) {
		t.Fatalf("html dashboard: %s", html)
	}

	bresp, err := http.Get(url + debugBrainyPath + "?format=gopher")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: %d", bresp.StatusCode)
	}
}

// TestDashboardEmpty renders the no-data page without errors.
func TestDashboardEmpty(t *testing.T) {
	s := rulesServer(Config{})
	url, _ := startServer(t, s)
	resp, err := http.Get(url + debugBrainyPath)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "no instance timelines yet") {
		t.Fatalf("empty dashboard: %s", body)
	}
}
