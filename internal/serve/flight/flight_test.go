package flight

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRingAppendAndWrap(t *testing.T) {
	r := NewRing(3, nil)
	for i := 0; i < 5; i++ {
		seq := r.Append(Record{Source: "advise", Context: "ctx", Kind: "vector"})
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq = %d", i, seq)
		}
	}
	if got := r.Total(); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3 (the bound)", len(snap))
	}
	// Oldest first, and the two oldest records were overwritten.
	for i, rec := range snap {
		if rec.Seq != uint64(i+3) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, rec.Seq, i+3)
		}
		if rec.UnixNano == 0 {
			t.Fatalf("snapshot[%d] missing wall-clock stamp", i)
		}
	}
}

// TestSharedSeqOrdersAcrossRings pins the fleet-merge contract: rings built
// on one shared counter assign globally unique, strictly increasing
// sequence numbers, so merged snapshots sort into one journal.
func TestSharedSeqOrdersAcrossRings(t *testing.T) {
	var seq atomic.Uint64
	a, b := NewRing(8, &seq), NewRing(8, &seq)
	a.Append(Record{Source: "advise"})
	b.Append(Record{Source: "migration"})
	a.Append(Record{Source: "advise"})
	seen := map[uint64]bool{}
	for _, rec := range append(a.Snapshot(), b.Snapshot()...) {
		if seen[rec.Seq] {
			t.Fatalf("duplicate seq %d across rings", rec.Seq)
		}
		seen[rec.Seq] = true
	}
	for want := uint64(1); want <= 3; want++ {
		if !seen[want] {
			t.Fatalf("seq %d missing from merged snapshots", want)
		}
	}
}

func TestNilRingIsInert(t *testing.T) {
	var r *Ring
	if seq := r.Append(Record{}); seq != 0 {
		t.Fatalf("nil ring append returned seq %d", seq)
	}
	if r.Snapshot() != nil || r.Total() != 0 || r.Cap() != 0 {
		t.Fatal("nil ring is not inert")
	}
}

// TestConcurrentAppendSnapshot runs appends and snapshots in parallel; the
// race detector is the assertion, plus every snapshotted record must be
// internally consistent (never a half-written struct).
func TestConcurrentAppendSnapshot(t *testing.T) {
	r := NewRing(16, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Append(Record{Source: "advise", Context: "c", Kind: "vector", Suggested: "hash_set"})
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				for _, rec := range r.Snapshot() {
					if rec.Kind != "vector" || rec.Suggested != "hash_set" || rec.Seq == 0 {
						t.Errorf("torn record: %+v", rec)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("total = %d, want 800", r.Total())
	}
}
