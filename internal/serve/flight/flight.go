// Package flight is the decision provenance flight recorder: a fixed-size
// ring buffer of Records, one per advisory decision, that answers "why did
// Brainy say that" after the fact. The serving tier keeps one ring per
// advisor shard (journaling every advise verdict with its class
// distribution, cache/batch path, and latency) and the adaptive container
// journals its migration decisions — accepted, skipped, and illegal — into
// the same record shape, so one journal format covers the whole
// profile → advice → replacement loop.
//
// The ring is deliberately small and lossy: it is a crash-cart, not an audit
// log. Old records are overwritten at the bound; Total() keeps counting so
// consumers can see how much history scrolled away.
package flight

import (
	"sync"
	"sync/atomic"
	"time"
)

// KindProb is one entry of a recorded class distribution. Kinds are stored
// as strings: records are a display/serialization format, and keeping the
// package dependency-free lets every layer (serve shards, adaptive
// containers) journal into the same ring type.
type KindProb struct {
	Kind string  `json:"kind"`
	Prob float64 `json:"prob"`
}

// Record is one journaled decision. Source tells which loop produced it:
//
//	"advise"    one /v1/advise verdict (Path says cache hit or batch miss)
//	"drift"     one confirmed phase-drift event on the ingest path
//	"migration" one adaptive-container migration decision (Verdict says
//	            whether it was applied, completed, or why it was skipped)
//
// Fields that do not apply to a source are left at their zero value and
// omitted from JSON.
type Record struct {
	Seq      uint64 `json:"seq"`       // global journal order across rings
	UnixNano int64  `json:"unix_nano"` // wall clock at journaling
	Source   string `json:"source"`
	Verdict  string `json:"verdict"` // advise: "ok"|"no-model"; migration: "applied"|"completed"|"busy"|"cooldown"|legality verdict

	RequestID string `json:"request_id,omitempty"`
	Context   string `json:"context"`
	Instance  string `json:"instance,omitempty"` // instance key when known
	Shard     int    `json:"shard"`
	Arch      string `json:"arch,omitempty"`

	Digest     string  `json:"digest,omitempty"` // canonical feature digest (inference-key prefix)
	Kind       string  `json:"kind"`             // original / migrating-from kind
	Suggested  string  `json:"suggested,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`

	Path      string `json:"path,omitempty"` // advise resolution: "cache" | "batch"
	BatchID   uint64 `json:"batch_id,omitempty"`
	BatchSize int    `json:"batch_size,omitempty"`

	Registry  string `json:"registry,omitempty"` // model registry fingerprint
	Drift     string `json:"drift,omitempty"`    // drift state of the instance at decision time
	LatencyNs int64  `json:"latency_ns,omitempty"`

	WindowSeq int `json:"window_seq,omitempty"` // migration trigger window
	Votes     int `json:"votes,omitempty"`      // hysteresis votes behind the trigger
	Moved     int `json:"moved,omitempty"`      // elements a completed migration transferred

	Probs    []KindProb `json:"probs,omitempty"`    // class distribution, descending
	Features []float64  `json:"features,omitempty"` // feature vector of the decided profile
}

// Ring is a bounded decision journal. Appends stamp the record's Seq (from
// a counter that may be shared across rings, giving a fleet-wide merge
// order) and wall clock, then overwrite the oldest record at the bound. All
// methods are safe for concurrent use and on a nil *Ring (no-ops), so a
// disabled recorder is just a nil pointer.
type Ring struct {
	seq  *atomic.Uint64
	size int // immutable bound, readable without the lock

	mu    sync.Mutex
	buf   []Record
	next  int
	full  bool
	total uint64
}

// NewRing builds a ring holding at most size records. seq orders appends;
// pass one shared counter to every ring whose snapshots will be merged, or
// nil to give this ring a private counter.
func NewRing(size int, seq *atomic.Uint64) *Ring {
	if size < 1 {
		size = 1
	}
	if seq == nil {
		seq = new(atomic.Uint64)
	}
	return &Ring{seq: seq, size: size, buf: make([]Record, 0, size)}
}

// Append journals one record, stamping Seq and UnixNano, and returns the
// assigned sequence number (0 on a nil ring).
func (r *Ring) Append(rec Record) uint64 {
	if r == nil {
		return 0
	}
	rec.Seq = r.seq.Add(1)
	rec.UnixNano = time.Now().UnixNano()
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
		r.next = (r.next + 1) % cap(r.buf)
		r.full = true
	}
	r.total++
	r.mu.Unlock()
	return rec.Seq
}

// Snapshot copies the retained records, oldest first.
func (r *Ring) Snapshot() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Total reports how many records were ever appended, including ones the
// bound has since overwritten.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap reports the ring's bound.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return r.size
}
