package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/serve/flight"
	"repro/internal/workloads/phases"
)

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

// TestAdviseJournalsDecisions is the flight-recorder round trip behind
// brainy-explain: a served advise request is queryable by its request ID
// before the response returns, carrying the full provenance of the verdict.
func TestAdviseJournalsDecisions(t *testing.T) {
	s := New(testModels(), quietConfig(Config{}))
	url, _ := startServer(t, s)

	body := traceBody(t, []profile.Profile{vectorProfile("prov/a", 200), vectorProfile("prov/b", 300)})
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/advise?arch=Core2", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "prov-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advise status = %d", resp.StatusCode)
	}

	// The journal is written before the HTTP response completes, so the
	// very next query must see both decisions.
	var dec DecisionsResponse
	getJSON(t, url+decisionsPath+"?format=json&request_id=prov-req-1", &dec)
	if !dec.Enabled || dec.SchemaVersion != 1 {
		t.Fatalf("journal header: %+v", dec)
	}
	if dec.Returned != 2 {
		t.Fatalf("journaled decisions for the request = %d, want 2", dec.Returned)
	}
	contexts := map[string]bool{}
	for _, rec := range dec.Records {
		contexts[rec.Context] = true
		if rec.Source != "advise" || rec.Verdict != "ok" {
			t.Fatalf("record source/verdict: %+v", rec)
		}
		if rec.Path != "cache" && rec.Path != "batch" {
			t.Fatalf("record path %q", rec.Path)
		}
		if rec.Path == "batch" && (rec.BatchID == 0 || rec.BatchSize < 1 || rec.LatencyNs <= 0) {
			t.Fatalf("batch provenance incomplete: %+v", rec)
		}
		if rec.Kind != "vector" || rec.Suggested == "" || len(rec.Probs) == 0 {
			t.Fatalf("verdict provenance incomplete: %+v", rec)
		}
		if rec.Probs[0].Kind != rec.Suggested || rec.Probs[0].Prob != rec.Confidence {
			t.Fatalf("distribution head disagrees with verdict: %+v", rec)
		}
		if len(rec.Digest) != 16 || rec.Registry == "" || len(rec.Features) != profile.NumFeatures {
			t.Fatalf("identity fields incomplete: digest=%q registry=%q features=%d",
				rec.Digest, rec.Registry, len(rec.Features))
		}
	}
	if !contexts["prov/a"] || !contexts["prov/b"] {
		t.Fatalf("journaled contexts: %v", contexts)
	}

	// A repeat of the same trace hits the inference cache; the journal
	// records the hit as its own decision with the cache path.
	req2, _ := http.NewRequest(http.MethodPost, url+"/v1/advise?arch=Core2", bytes.NewReader(body))
	req2.Header.Set("X-Request-ID", "prov-req-2")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	var dec2 DecisionsResponse
	getJSON(t, url+decisionsPath+"?format=json&request_id=prov-req-2", &dec2)
	if dec2.Returned != 2 {
		t.Fatalf("cached decisions journaled = %d, want 2", dec2.Returned)
	}
	for _, rec := range dec2.Records {
		if rec.Path != "cache" {
			t.Fatalf("repeat advise path = %q, want cache: %+v", rec.Path, rec)
		}
	}
}

// TestDecisionsFilters exercises the query surface: every filter narrows the
// journal, bad parameters are rejected, and limit keeps the newest records.
func TestDecisionsFilters(t *testing.T) {
	s := New(testModels(), quietConfig(Config{}))
	url, _ := startServer(t, s)
	body := traceBody(t, []profile.Profile{vectorProfile("f/a", 100), vectorProfile("f/b", 150)})
	if resp, _ := postAdvise(t, url, body, "Core2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("advise status = %d", resp.StatusCode)
	}

	var all DecisionsResponse
	getJSON(t, url+decisionsPath+"?format=json", &all)
	if all.Returned != 2 {
		t.Fatalf("unfiltered journal = %d records, want 2", all.Returned)
	}
	// Records arrive merged in global sequence order.
	if !sort.SliceIsSorted(all.Records, func(i, j int) bool { return all.Records[i].Seq < all.Records[j].Seq }) {
		t.Fatal("journal not in sequence order")
	}

	var byCtx DecisionsResponse
	getJSON(t, url+decisionsPath+"?format=json&context=f%2Fa", &byCtx)
	if byCtx.Returned != 1 || byCtx.Records[0].Context != "f/a" {
		t.Fatalf("context filter: %+v", byCtx)
	}

	var bySource DecisionsResponse
	getJSON(t, url+decisionsPath+"?format=json&source=migration", &bySource)
	if bySource.Returned != 0 {
		t.Fatalf("source filter let %d advise records through", bySource.Returned)
	}

	var limited DecisionsResponse
	getJSON(t, url+decisionsPath+"?format=json&limit=1", &limited)
	if limited.Returned != 1 || limited.Records[0].Seq != all.Records[len(all.Records)-1].Seq {
		t.Fatalf("limit did not keep the newest record: %+v", limited)
	}

	for _, bad := range []string{"?shard=x", "?limit=-1", "?format=xml"} {
		resp, err := http.Get(url + decisionsPath + bad)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestDecisionsDisabled: a negative FlightSize turns the recorder off; the
// endpoint stays mounted and says so, and the advise path never journals.
func TestDecisionsDisabled(t *testing.T) {
	s := New(testModels(), quietConfig(Config{FlightSize: -1}))
	url, _ := startServer(t, s)
	body := traceBody(t, []profile.Profile{vectorProfile("off", 100)})
	if resp, _ := postAdvise(t, url, body, "Core2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("advise status = %d", resp.StatusCode)
	}

	var dec DecisionsResponse
	getJSON(t, url+decisionsPath+"?format=json", &dec)
	if dec.Enabled || dec.Capacity != 0 || dec.Total != 0 || dec.Returned != 0 {
		t.Fatalf("disabled journal: %+v", dec)
	}
	tresp, err := http.Get(url + decisionsPath)
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if !strings.Contains(string(text), "flight recorder disabled") {
		t.Fatalf("disabled text page:\n%s", text)
	}
}

// TestDecisionsTextGolden pins the terminal rendering byte-for-byte for a
// hand-built journal covering all three record sources. Regenerate with:
//
//	go test ./internal/serve -run TestDecisionsTextGolden -update-golden
func TestDecisionsTextGolden(t *testing.T) {
	d := DecisionsResponse{
		SchemaVersion: 1,
		Enabled:       true,
		Capacity:      512,
		Total:         9,
		Returned:      4,
		Records: []flight.Record{
			{Seq: 6, Source: "advise", Verdict: "ok", Shard: 0, Path: "batch",
				Context: "loadgen/site1", Kind: "vector", Suggested: "hash_set",
				Confidence: 0.91, LatencyNs: 184_300, BatchID: 3, BatchSize: 4,
				Probs: []flight.KindProb{{Kind: "hash_set", Prob: 0.91}, {Kind: "vector", Prob: 0.05},
					{Kind: "avl_tree", Prob: 0.03}, {Kind: "list", Prob: 0.01}}},
			{Seq: 7, Source: "advise", Verdict: "ok", Shard: 1, Path: "cache",
				Context: "loadgen/site2", Kind: "vector", Suggested: "vector", Confidence: 0.77,
				Probs: []flight.KindProb{{Kind: "vector", Prob: 0.77}, {Kind: "hash_set", Prob: 0.23}}},
			{Seq: 8, Source: "drift", Verdict: "confirmed", Shard: 0,
				Context: "phases/demo", Instance: "phases/demo#0", Kind: "vector",
				Suggested: "hash_set", Confidence: 0.88, WindowSeq: 41, Votes: 2},
			{Seq: 9, Source: "migration", Verdict: "applied", Shard: 0,
				Context: "phases/demo", Instance: "phases/demo#0", Kind: "vector",
				Suggested: "hash_set", Confidence: 0.88, WindowSeq: 41, Votes: 2},
		},
	}
	got := []byte(renderDecisionsText(d))

	goldenPath := filepath.Join("testdata", "decisions.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("decision journal drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRollupReconcilesExactly is the fleet-rollup accounting contract: after
// a fixed ingest-and-advise sequence, /v1/rollup totals equal the
// client-observed counts exactly — no sampling, no drift.
func TestRollupReconcilesExactly(t *testing.T) {
	s := rulesServer(Config{})
	url, _ := startServer(t, s)

	stream := phaseWindowStream(t, 64)
	resp, out := postProfiles(t, url, stream)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profiles status = %d", resp.StatusCode)
	}
	var adviseOps int
	for i := 0; i < 3; i++ {
		body := traceBody(t, []profile.Profile{
			vectorProfile(fmt.Sprintf("roll/%d", i), 100+i),
			vectorProfile(fmt.Sprintf("roll/%d-b", i), 200+i),
		})
		aresp, aout := postAdvise(t, url, body, "Core2")
		if aresp.StatusCode != http.StatusOK {
			t.Fatalf("advise status = %d", aresp.StatusCode)
		}
		adviseOps += len(aout.Suggestions)
	}

	var roll RollupResponse
	getJSON(t, url+"/v1/rollup", &roll)
	if roll.SchemaVersion != 1 || roll.Shards < 1 {
		t.Fatalf("rollup header: %+v", roll)
	}
	if roll.RegistryFingerprint == "" || roll.RegistryFingerprint == "unknown" {
		t.Fatalf("registry fingerprint %q", roll.RegistryFingerprint)
	}
	if roll.Windows != uint64(out.Accepted) {
		t.Fatalf("rollup windows = %d, accepted = %d", roll.Windows, out.Accepted)
	}
	if roll.AdviseDecisions != uint64(adviseOps) {
		t.Fatalf("rollup advise_decisions = %d, client saw %d suggestions", roll.AdviseDecisions, adviseOps)
	}
	if roll.Instances != 1 || roll.DriftEvents != 1 {
		t.Fatalf("rollup instances/drift: %+v", roll)
	}
	if roll.DecisionsJournaled == 0 || roll.DecisionsRetained == 0 {
		t.Fatalf("rollup journal totals: %+v", roll)
	}
	if len(roll.Features) != profile.NumFeatures {
		t.Fatalf("rollup features = %d names", len(roll.Features))
	}

	// Per-kind rows are sorted, sum to the totals, and the phase workload's
	// vector row carries a feature mean and the advised histogram.
	if !sort.SliceIsSorted(roll.Kinds, func(i, j int) bool { return roll.Kinds[i].Kind < roll.Kinds[j].Kind }) {
		t.Fatal("rollup kinds not sorted")
	}
	var windows, advise uint64
	var vecRow *RollupKind
	for i := range roll.Kinds {
		windows += roll.Kinds[i].Windows
		advise += roll.Kinds[i].AdviseDecisions
		if roll.Kinds[i].Kind == "vector" {
			vecRow = &roll.Kinds[i]
		}
	}
	if windows != roll.Windows || advise != roll.AdviseDecisions {
		t.Fatalf("per-kind rows do not sum to totals: %d/%d windows, %d/%d advise",
			windows, roll.Windows, advise, roll.AdviseDecisions)
	}
	if vecRow == nil {
		t.Fatal("no vector row")
	}
	if len(vecRow.FeatureMean) != profile.NumFeatures || vecRow.HW.Cycles <= 0 || vecRow.Ops == 0 {
		t.Fatalf("vector row aggregates: %+v", vecRow)
	}
	var advisedTotal uint64
	for _, n := range vecRow.Advised {
		advisedTotal += n
	}
	if advisedTotal != vecRow.AdviseDecisions {
		t.Fatalf("advised histogram sums to %d, row has %d decisions", advisedTotal, vecRow.AdviseDecisions)
	}

	// POST is rejected: the rollup is a read-only scrape target.
	presp, err := http.Post(url+"/v1/rollup", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/rollup = %d", presp.StatusCode)
	}
}

// TestAdviseExplainOptIn: the class distribution rides the response only
// when the client asks for it, and stripping it does not disturb the
// suggestions themselves.
func TestAdviseExplainOptIn(t *testing.T) {
	s := New(testModels(), quietConfig(Config{}))
	url, _ := startServer(t, s)
	body := traceBody(t, []profile.Profile{vectorProfile("exp", 120)})

	_, plain := postAdvise(t, url, body, "Core2")
	if len(plain.Suggestions) != 1 || plain.Suggestions[0].Explanation != nil {
		t.Fatalf("default response leaked an explanation: %+v", plain.Suggestions)
	}

	resp, err := http.Post(url+"/v1/advise?arch=Core2&explain=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var explained AdviseResponse
	if err := json.NewDecoder(resp.Body).Decode(&explained); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(explained.Suggestions) != 1 {
		t.Fatalf("suggestions = %d", len(explained.Suggestions))
	}
	sug := explained.Suggestions[0]
	if sug.Explanation == nil || len(sug.Explanation.Probs) < 2 {
		t.Fatalf("no class distribution with explain=1: %+v", sug)
	}
	var sum float64
	for _, kp := range sug.Explanation.Probs {
		sum += kp.Prob
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("distribution sums to %g", sum)
	}
	if sug.Explanation.Probs[0].Kind != sug.Suggested || sug.Explanation.Probs[0].Prob != sug.Confidence {
		t.Fatalf("distribution head disagrees with the verdict: %+v", sug)
	}
	if sug.Context != plain.Suggestions[0].Context || sug.Suggested != plain.Suggestions[0].Suggested {
		t.Fatalf("explain changed the verdict: %+v vs %+v", sug, plain.Suggestions[0])
	}
}

// TestDashboardJSONSchemaV2 locks the brainy-top contract: schema version 2,
// rows sorted by instance key, and a monotone touch stamp for recency sorts.
func TestDashboardJSONSchemaV2(t *testing.T) {
	s := rulesServer(Config{})
	url, _ := startServer(t, s)
	for _, inst := range []string{"2", "0", "1"} {
		w := `{"context":"schema/site","kind":0,"instance":` + inst +
			`,"window_seq":0,"window_start_op":0,"window_end_op":8,"stats":{"count":[0,0,0,0,8,0,0,0,0,0]}}` + "\n"
		if resp, _ := postProfiles(t, url, []byte(w)); resp.StatusCode != http.StatusOK {
			t.Fatalf("instance %s: status = %d", inst, resp.StatusCode)
		}
	}

	var dash DashboardResponse
	getJSON(t, url+debugBrainyPath+"?format=json", &dash)
	if dash.SchemaVersion != 2 {
		t.Fatalf("schema_version = %d, want 2", dash.SchemaVersion)
	}
	if len(dash.Rows) != 3 {
		t.Fatalf("rows = %d", len(dash.Rows))
	}
	if !sort.SliceIsSorted(dash.Rows, func(i, j int) bool { return dash.Rows[i].Key < dash.Rows[j].Key }) {
		t.Fatalf("rows not key-sorted: %v", []string{dash.Rows[0].Key, dash.Rows[1].Key, dash.Rows[2].Key})
	}
	// Touch reflects ingest order (2, 0, 1), not key order.
	byKey := map[string]uint64{}
	for _, row := range dash.Rows {
		if row.Touch == 0 {
			t.Fatalf("row %s has no touch stamp", row.Key)
		}
		byKey[row.Key] = row.Touch
	}
	if !(byKey["schema/site#2"] < byKey["schema/site#0"] && byKey["schema/site#0"] < byKey["schema/site#1"]) {
		t.Fatalf("touch stamps do not follow ingest order: %v", byKey)
	}
}

// TestBuildInfoAndUptime: the identity metrics satellite — one build-info
// gauge carrying the registry fingerprint and a moving uptime gauge.
func TestBuildInfoAndUptime(t *testing.T) {
	s := New(testModels(), quietConfig(Config{}))
	url, _ := startServer(t, s)

	scrape := func() string {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		page, _ := io.ReadAll(resp.Body)
		return string(page)
	}
	page := scrape()
	var buildLine string
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, "brainy_build_info{") {
			buildLine = line
		}
	}
	if buildLine == "" {
		t.Fatalf("no brainy_build_info sample:\n%s", page)
	}
	for _, want := range []string{`go_version="go`, `registry_fingerprint="`, "} 1"} {
		if !strings.Contains(buildLine, want) {
			t.Fatalf("build info line missing %q: %s", want, buildLine)
		}
	}
	// The fingerprint matches what /v1/rollup reports: both identify the
	// same loaded registry.
	var roll RollupResponse
	getJSON(t, url+"/v1/rollup", &roll)
	if !strings.Contains(buildLine, `registry_fingerprint="`+roll.RegistryFingerprint+`"`) {
		t.Fatalf("fingerprint mismatch: metrics %s, rollup %s", buildLine, roll.RegistryFingerprint)
	}
	if !strings.Contains(page, "brainy_uptime_seconds") {
		t.Fatalf("no uptime gauge:\n%s", page)
	}
	time.Sleep(20 * time.Millisecond)
	read := func(page string) float64 {
		for _, line := range strings.Split(page, "\n") {
			if strings.HasPrefix(line, "brainy_uptime_seconds ") {
				var v float64
				fmt.Sscanf(line, "brainy_uptime_seconds %g", &v)
				return v
			}
		}
		t.Fatal("no uptime sample")
		return 0
	}
	if a, b := read(page), read(scrape()); b <= a {
		t.Fatalf("uptime did not advance: %g then %g", a, b)
	}
}

// TestAdviseExemplarOnLatencyHistogram: served advise requests stamp their
// request ID on the latency bucket they land in — the /metrics half of the
// exemplar link brainy-top and loadgen consume.
func TestAdviseExemplarOnLatencyHistogram(t *testing.T) {
	s := New(testModels(), quietConfig(Config{}))
	url, _ := startServer(t, s)
	body := traceBody(t, []profile.Profile{vectorProfile("exemplar", 140)})
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/advise?arch=Core2", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "exemplar-req-9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(page), `# {request_id="exemplar-req-9"}`) {
		t.Fatalf("advise request ID not stamped as an exemplar:\n%s", page)
	}
	// The /metrics request itself must not stamp exemplars: only advise
	// traffic is worth tracing back.
	count := strings.Count(string(page), "# {request_id=")
	if count != 1 {
		t.Fatalf("exemplar stamped on non-advise traffic: %d exemplars\n%s", count, page)
	}
}

// TestDecisionJournalConcurrent hammers the journal from every side at once
// — advises, scrapes, rollups — so the race detector can prove the
// flight-recorder locking. Run with -race (the CI race job does).
func TestDecisionJournalConcurrent(t *testing.T) {
	s := New(testModels(), quietConfig(Config{FlightSize: 16})) // tiny ring: force overwrites
	url, _ := startServer(t, s)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				body := traceBody(t, []profile.Profile{vectorProfile(fmt.Sprintf("conc/%d-%d", g, i), 100+g*20+i)})
				resp, err := http.Post(url+"/v1/advise?arch=Core2", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, path := range []string{decisionsPath + "?format=json", "/v1/rollup"} {
					resp, err := http.Get(url + path)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	var dec DecisionsResponse
	getJSON(t, url+decisionsPath+"?format=json", &dec)
	if dec.Total != 80 {
		t.Fatalf("journaled %d decisions, want 80", dec.Total)
	}
	for _, rec := range dec.Records {
		if rec.Source != "advise" || rec.Seq == 0 || len(rec.Probs) == 0 {
			t.Fatalf("torn record under concurrency: %+v", rec)
		}
	}
}

// TestRecordAdviseDisabledZeroAlloc proves the recording-off fast path: with
// the flight recorder disabled the journaling hook is a nil-check and
// nothing more — zero allocations on the advise hot path.
func TestRecordAdviseDisabledZeroAlloc(t *testing.T) {
	s := New(testModels(), quietConfig(Config{FlightSize: -1}))
	sh := s.shards[0]
	if sh.flight != nil {
		t.Fatal("flight ring allocated despite negative FlightSize")
	}
	p := vectorProfile("alloc", 100)
	sug := core.Suggestion{Context: "alloc"}
	var key cacheKey
	allocs := testing.AllocsPerRun(1000, func() {
		sh.recordAdvise(&p, "Core2", key, sug, nil, "req", "batch", 1, 4, time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled recordAdvise allocates %g per call, want 0", allocs)
	}
}

// TestDriftEventsJournaled: the ingest path journals confirmed drift as its
// own record source, linked to the instance and trigger window.
func TestDriftEventsJournaled(t *testing.T) {
	s := rulesServer(Config{})
	url, _ := startServer(t, s)
	if resp, _ := postProfiles(t, url, phaseWindowStream(t, 64)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}

	var dec DecisionsResponse
	getJSON(t, url+decisionsPath+"?format=json&source=drift", &dec)
	if dec.Returned != 1 {
		t.Fatalf("drift records journaled = %d, want 1", dec.Returned)
	}
	rec := dec.Records[0]
	if rec.Verdict != "confirmed" || rec.Instance != phases.Context+"#0" {
		t.Fatalf("drift record: %+v", rec)
	}
	if rec.Kind != "vector" || rec.Suggested != "hash_set" || rec.Votes < 1 || rec.WindowSeq == 0 {
		t.Fatalf("drift provenance incomplete: %+v", rec)
	}
	if len(rec.Features) != profile.NumFeatures {
		t.Fatalf("drift record features = %d", len(rec.Features))
	}
}
