package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/telemetry/slo"
	"repro/internal/telemetry/tsdb"
)

// observedServer builds a server whose self-observation runs on a synthetic
// clock: the background sampler is parked (hour-long interval) and replaced
// with a fake-clocked one over the same registry, so tests control scrape
// cadence and timestamps exactly. step advances the clock one second and
// scrapes (which re-evaluates the SLOs, as in production).
func observedServer(t *testing.T, sloCfg slo.Config) (*Server, *httptest.Server, func()) {
	t.Helper()
	s := New(testModels(), quietConfig(Config{SampleInterval: time.Hour}))
	t.Cleanup(s.Close)
	clock := time.Unix(1_000_000, 0)
	sam := tsdb.New(s.metrics.Registry(), tsdb.Config{
		Now:      func() time.Time { return clock },
		NoGauges: true, // the parked sampler already registered them
		OnSample: func(now time.Time) { s.evaluator.Evaluate(now) },
	})
	s.sampler = sam
	s.evaluator = slo.New(sam.DB(), s.defaultObjectives(), sloCfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	step := func() {
		clock = clock.Add(time.Second)
		sam.Scrape()
	}
	return s, ts, step
}

// getHealth fetches /v1/health and decodes it.
func getHealth(t *testing.T, base string) (int, HealthResponse) {
	t.Helper()
	resp, err := http.Get(base + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestHealthAvailabilityFlipsAndRecovers drives the availability objective
// through the full cycle: healthy traffic, an error burst that must survive
// hysteresis before the verdict flips, then recovery once the windows drain.
func TestHealthAvailabilityFlipsAndRecovers(t *testing.T) {
	s, ts, step := observedServer(t, slo.Config{
		FastWindow: 2 * time.Second,
		SlowWindow: 4 * time.Second,
		Hysteresis: 2,
		// Keep the verdict in degraded territory: this test is about the
		// flip mechanics, not the critical threshold.
		CriticalBurn: 1e9,
	})

	// Healthy traffic, sampled each second.
	for i := 0; i < 5; i++ {
		for j := 0; j < 100; j++ {
			s.requestCounter("/v1/advise", 200).Inc()
		}
		step()
	}
	code, h := getHealth(t, ts.URL)
	if code != http.StatusOK || h.Status != "ok" || !h.Enabled {
		t.Fatalf("healthy server: code=%d %+v", code, h)
	}
	if len(h.SLO.Objectives) != 4 {
		t.Fatalf("objective count = %d, want 4", len(h.SLO.Objectives))
	}

	// Error burst: the first agreeing evaluation only arms the streak.
	for j := 0; j < 100; j++ {
		s.requestCounter("/v1/advise", 500).Inc()
	}
	step()
	if _, h := getHealth(t, ts.URL); h.Status != "ok" {
		t.Fatalf("flipped without hysteresis: %+v", h)
	}
	for j := 0; j < 100; j++ {
		s.requestCounter("/v1/advise", 500).Inc()
	}
	step()
	code, h = getHealth(t, ts.URL)
	if code != http.StatusOK || h.Status != "degraded" {
		t.Fatalf("after confirmed burst: code=%d status=%q", code, h.Status)
	}
	var reason string
	for _, o := range h.SLO.Objectives {
		if o.Name == "advise-availability" {
			reason = o.Reason
		}
	}
	if !strings.Contains(reason, "advise-availability") || !strings.Contains(reason, "burn") {
		t.Fatalf("degraded objective reason = %q", reason)
	}

	// Silence drains the windows; hysteresis delays the flip back.
	recovered := false
	for i := 0; i < 12 && !recovered; i++ {
		step()
		_, h = getHealth(t, ts.URL)
		recovered = h.Status == "ok"
	}
	if !recovered {
		t.Fatalf("never recovered: %+v", h)
	}
}

// TestHealthCriticalReturns503 checks the load-balancer contract: a critical
// verdict answers 503 so upstreams stop routing here.
func TestHealthCriticalReturns503(t *testing.T) {
	s, ts, step := observedServer(t, slo.Config{
		FastWindow: 2 * time.Second,
		SlowWindow: 2 * time.Second,
		Hysteresis: 1,
	})
	step()
	for j := 0; j < 100; j++ {
		s.requestCounter("/v1/advise", 500).Inc()
	}
	step() // 100% errors: burn 1000x the 0.1% budget, critical immediately
	code, h := getHealth(t, ts.URL)
	if code != http.StatusServiceUnavailable || h.Status != "critical" {
		t.Fatalf("critical verdict: code=%d status=%q", code, h.Status)
	}
}

// TestHealthLatencyObjectiveFlips drives the advise-p99 objective directly
// through the advise-only histogram, the same series the CI burst exercises.
func TestHealthLatencyObjectiveFlips(t *testing.T) {
	s, ts, step := observedServer(t, slo.Config{
		FastWindow:   2 * time.Second,
		SlowWindow:   2 * time.Second,
		Hysteresis:   1,
		CriticalBurn: 1e9,
	})
	for i := 0; i < 3; i++ {
		s.metrics.AdviseLatency.Observe(0.001)
		step()
	}
	if _, h := getHealth(t, ts.URL); h.Status != "ok" {
		t.Fatalf("fast advises: %+v", h)
	}
	// A burst entirely above the 250ms default threshold.
	for j := 0; j < 50; j++ {
		s.metrics.AdviseLatency.Observe(1.0)
	}
	step()
	_, h := getHealth(t, ts.URL)
	if h.Status != "degraded" {
		t.Fatalf("slow burst: status=%q %+v", h.Status, h.SLO.Objectives)
	}
	found := false
	for _, o := range h.SLO.Objectives {
		if o.Name == "advise-p99" && o.State == slo.StateDegraded {
			found = true
		}
	}
	if !found {
		t.Fatalf("degradation not attributed to advise-p99: %+v", h.SLO.Objectives)
	}
}

func TestTimeseriesEndpoint(t *testing.T) {
	s, ts, step := observedServer(t, slo.Config{})
	for i := 0; i < 4; i++ {
		s.requestCounter("/v1/advise", 200).Inc()
		s.metrics.AdviseLatency.Observe(0.002)
		step()
	}

	// Catalog form: every registry metric became a series.
	resp, err := http.Get(ts.URL + "/v1/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	var cat TimeseriesResponse
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !cat.Enabled || len(cat.Series) == 0 {
		t.Fatalf("catalog: %+v", cat)
	}
	names := make(map[string]bool, len(cat.Series))
	for _, si := range cat.Series {
		names[si.Name] = true
	}
	for _, want := range []string{
		`brainy_requests_total{path="/v1/advise",code="200"}`,
		"brainy_advise_duration_seconds",
		"brainy_inflight_requests",
	} {
		if !names[want] {
			t.Fatalf("catalog missing %q: %v", want, cat.Series)
		}
	}

	// Point form, including a derived quantile series.
	q := url.Values{}
	q.Set("series", `brainy_requests_total{path="/v1/advise",code="200"},brainy_advise_duration_seconds:p99`)
	resp, err = http.Get(ts.URL + "/v1/timeseries?" + q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	var pts TimeseriesResponse
	if err := json.NewDecoder(resp.Body).Decode(&pts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	raw := pts.Points[`brainy_requests_total{path="/v1/advise",code="200"}`]
	if len(raw) != 4 || raw[len(raw)-1].V != 4 {
		t.Fatalf("counter points: %+v", raw)
	}
	p99 := pts.Points["brainy_advise_duration_seconds:p99"]
	if len(p99) == 0 {
		t.Fatalf("derived p99 series empty: %+v", pts.Points)
	}
	for _, p := range p99 {
		if p.V <= 0 || p.V > 0.01 {
			t.Fatalf("p99 point %v outside the observed bucket", p.V)
		}
	}

	// Bad since is a 400.
	resp, err = http.Get(ts.URL + "/v1/timeseries?since=bogus")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since: %d, want 400", resp.StatusCode)
	}
}

// TestHealthDisabled checks the negative-interval escape hatch: /v1/health
// stays a 200 liveness answer and /v1/timeseries reports disabled.
func TestHealthDisabled(t *testing.T) {
	s := New(testModels(), quietConfig(Config{SampleInterval: -1}))
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, h := getHealth(t, ts.URL)
	if code != http.StatusOK || h.Status != "ok" || h.Enabled {
		t.Fatalf("disabled health: code=%d %+v", code, h)
	}
	resp, err := http.Get(ts.URL + "/v1/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out TimeseriesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Enabled || len(out.Series) != 0 {
		t.Fatalf("disabled timeseries: %+v", out)
	}
}

// TestObservabilityUnderConcurrency hammers the full self-observation stack
// at once — a fast background sampler, concurrent advises through the tracer
// and tail buffer, and readers on every new surface — then drains. Run under
// -race in CI; the assertion is the detector staying quiet plus a clean drain.
func TestObservabilityUnderConcurrency(t *testing.T) {
	buf := telemetry.NewTraceBuffer(time.Nanosecond, 32)
	s := New(testModels(), quietConfig(Config{
		SampleInterval: 5 * time.Millisecond,
		Tracer:         telemetry.NewTracer(telemetry.Fanout(buf)),
		Traces:         buf,
		ShutdownGrace:  5 * time.Second,
	}))
	base, _ := startServer(t, s)

	get := func(path string) error {
		resp, err := http.Get(base + path)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}
	const workers, iters = 4, 8
	errs := make(chan error, 2*workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < iters; i++ {
				body := traceBody(t, []profile.Profile{vectorProfile(fmt.Sprintf("race-w%d-%d", w, i), 50)})
				resp, err := http.Post(base+"/v1/advise?arch=Core2", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			errs <- nil
		}(w)
		go func() {
			for i := 0; i < iters; i++ {
				for _, p := range []string{
					"/v1/health",
					"/v1/timeseries",
					"/v1/timeseries?series=brainy_advise_duration_seconds:p99",
					"/debug/traces",
					"/debug/traces?format=json",
				} {
					if err := get(p); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < 2*workers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// The cleanup registered by startServer cancels Serve and asserts a
	// clean drain with the sampler still running.
}

// TestHealthReportsDrainingDuringDrain is the readiness/liveness split: once
// shutdown begins, /v1/health answers 503 `draining` while /healthz keeps
// answering 200 — orchestrators must stop routing without killing a process
// that is still finishing accepted work.
func TestHealthReportsDrainingDuringDrain(t *testing.T) {
	s := New(testModels(), quietConfig(Config{
		ShutdownGrace: 5 * time.Second,
		DrainDelay:    2 * time.Second,
	}))
	url, cancel := startServer(t, s)

	if code, h := getHealth(t, url); code != http.StatusOK || h.Draining {
		t.Fatalf("pre-drain health: code=%d %+v", code, h)
	}
	cancel()

	// Poll until the drain window opens (the flag flips just after cancel).
	deadline := time.Now().Add(time.Second)
	var code int
	var h HealthResponse
	for time.Now().Before(deadline) {
		code, h = getHealth(t, url)
		if h.Draining {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !h.Draining || h.Status != "draining" || code != http.StatusServiceUnavailable {
		t.Fatalf("during drain: code=%d %+v", code, h)
	}

	// Liveness is a different question with a different answer.
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz during drain: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200 (liveness must not fail)", resp.StatusCode)
	}
}
