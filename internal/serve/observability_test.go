package serve

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/profile"
	"repro/internal/telemetry"
)

// TestRequestIDPropagatedAndMinted covers the correlation middleware: a
// client-supplied X-Request-ID is echoed back verbatim, and a request
// without one gets a minted ID in the response header.
func TestRequestIDPropagatedAndMinted(t *testing.T) {
	s := New(testModels(), quietConfig(Config{}))
	url, _ := startServer(t, s)

	req, _ := http.NewRequest(http.MethodGet, url+"/healthz", nil)
	req.Header.Set("X-Request-ID", "client-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-abc-123" {
		t.Fatalf("client request id not propagated: %q", got)
	}

	resp2, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	minted := resp2.Header.Get("X-Request-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(minted) {
		t.Fatalf("minted request id %q is not 16 hex digits", minted)
	}
}

// TestUnknownPathsCollapseToOther is the metric-cardinality guard: a
// scanner probing arbitrary URLs lands in one path="<other>" label instead
// of minting a fresh label per URL.
func TestUnknownPathsCollapseToOther(t *testing.T) {
	s := New(testModels(), quietConfig(Config{}))
	url, _ := startServer(t, s)

	for i := 0; i < 5; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/scan/%d", url, i))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := s.Metrics().Requests.Value(`path="<other>",code="404"`); got != 5 {
		t.Fatalf("<other> bucket = %d, want 5", got)
	}
	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if strings.Contains(string(page), "/scan/") {
		t.Fatalf("scanned URLs leaked into metric labels:\n%s", page)
	}
	if !strings.Contains(string(page), `brainy_requests_total{path="<other>",code="404"} 5`) {
		t.Fatalf("missing <other> counter:\n%s", page)
	}
}

// TestMetricsPageWellFormed asserts the registry-backed /metrics page is
// valid text exposition: every metric has HELP and TYPE, every sample line
// parses, and the histogram carries +Inf/_sum/_count.
func TestMetricsPageWellFormed(t *testing.T) {
	s := New(testModels(), quietConfig(Config{}))
	url, _ := startServer(t, s)
	body := traceBody(t, []profile.Profile{vectorProfile("a", 200)})
	if resp, _ := postAdvise(t, url, body, "Core2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("advise status = %d", resp.StatusCode)
	}

	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(page)

	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[-+0-9].*)$`)
	seenHelp := map[string]bool{}
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for i, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			seenHelp[name] = true
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE "+name+" ") {
				t.Fatalf("HELP for %s not followed by its TYPE", name)
			}
		case strings.HasPrefix(line, "# TYPE "):
		default:
			if !sample.MatchString(line) {
				t.Fatalf("malformed sample line: %q", line)
			}
		}
	}
	for _, name := range []string{
		"brainy_requests_total", "brainy_request_duration_seconds",
		"brainy_inflight_requests", "brainy_cache_hits_total",
		"brainy_cache_misses_total", "brainy_inferences_total",
		"brainy_profiles_analyzed_total",
		"brainy_shards", "brainy_shard_queue_depth", "brainy_batch_size",
		"brainy_arena_bytes", "brainy_advise_duration_seconds",
		"brainy_tsdb_series", "brainy_tsdb_points",
	} {
		if !seenHelp[name] {
			t.Fatalf("metric %s has no HELP metadata:\n%s", name, text)
		}
	}
	for _, want := range []string{
		`brainy_request_duration_seconds_bucket{le="+Inf"}`,
		"brainy_request_duration_seconds_sum",
		"brainy_request_duration_seconds_count",
		`brainy_batch_size_bucket{le="+Inf"}`,
		"brainy_batch_size_sum",
		"brainy_batch_size_count",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("histogram missing %q:\n%s", want, text)
		}
	}
	// The one-profile advise above was a cache miss: it must have gone
	// through a shard batcher (exactly one coalesced evaluation observed)
	// and left the queues empty.
	if !strings.Contains(text, "brainy_batch_size_count 1") {
		t.Fatalf("advise miss did not flow through a batcher:\n%s", text)
	}
	if !strings.Contains(text, "brainy_shard_queue_depth 0") {
		t.Fatalf("shard queues not drained back to zero:\n%s", text)
	}
	// Byte-stable for a fixed state.
	mresp2, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page2, _ := io.ReadAll(mresp2.Body)
	mresp2.Body.Close()
	// Strip the request-counter/histogram churn the two /metrics requests
	// themselves cause before comparing, keeping the comparison honest for
	// everything else.
	scrub := func(s string) string {
		var keep []string
		for _, l := range strings.Split(s, "\n") {
			if strings.Contains(l, `path="/metrics"`) ||
				strings.HasPrefix(l, "brainy_request_duration_seconds") ||
				strings.HasPrefix(l, "brainy_uptime_seconds") ||
				// The background sampler may scrape between the two renders,
				// moving the store-occupancy gauges.
				strings.HasPrefix(l, "brainy_tsdb_") {
				continue
			}
			keep = append(keep, l)
		}
		return strings.Join(keep, "\n")
	}
	if scrub(text) != scrub(string(page2)) {
		t.Fatalf("metrics page not stable across renders:\n--- first ---\n%s\n--- second ---\n%s", text, page2)
	}
}

// TestPprofOptIn: /debug/pprof/ is 404 by default and served when enabled,
// and every pprof page shares one request-counter label.
func TestPprofOptIn(t *testing.T) {
	off := New(testModels(), quietConfig(Config{}))
	urlOff, _ := startServer(t, off)
	resp, err := http.Get(urlOff + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof served without opt-in: %d", resp.StatusCode)
	}

	on := New(testModels(), quietConfig(Config{EnablePprof: true}))
	urlOn, _ := startServer(t, on)
	for _, p := range []string{"/debug/pprof/", "/debug/pprof/heap"} {
		resp, err := http.Get(urlOn + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d with pprof enabled", p, resp.StatusCode)
		}
	}
	if got := on.Metrics().Requests.Value(`path="/debug/pprof/",code="200"`); got != 2 {
		t.Fatalf("pprof requests counter = %d, want 2 (one shared label)", got)
	}
}

// TestAdviseSpansCarryRequestID wires the tracer through a live request:
// the request span parents the advise span and both belong to one trace,
// with the request's correlation ID attached.
func TestAdviseSpansCarryRequestID(t *testing.T) {
	exp := &telemetry.MemoryExporter{}
	s := New(testModels(), quietConfig(Config{Tracer: telemetry.NewTracer(exp)}))
	url, _ := startServer(t, s)

	body := traceBody(t, []profile.Profile{vectorProfile("a", 200)})
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/advise?arch=Core2", strings.NewReader(string(body)))
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advise status = %d", resp.StatusCode)
	}

	spans := exp.Spans()
	var reqSpan, advSpan *telemetry.SpanData
	for i := range spans {
		switch spans[i].Name {
		case "request":
			reqSpan = &spans[i]
		case "advise":
			advSpan = &spans[i]
		}
	}
	if reqSpan == nil || advSpan == nil {
		t.Fatalf("missing spans, got %+v", spans)
	}
	if advSpan.ParentID != reqSpan.SpanID || advSpan.TraceID != reqSpan.TraceID {
		t.Fatal("advise span is not a child of the request span")
	}
	for _, sp := range []*telemetry.SpanData{reqSpan, advSpan} {
		if sp.Attr("request_id") != "trace-me-42" {
			t.Fatalf("span %s request_id = %v", sp.Name, sp.Attr("request_id"))
		}
	}
	if advSpan.Attr("arch") != "Core2" {
		t.Fatalf("advise span arch = %v", advSpan.Attr("arch"))
	}
}

// TestArenaBytesGaugeTracksLiveArenas pins the func-backed gauge: the
// /metrics page reads mem.TotalArenaBytes at exposition time, so a flat
// container allocated anywhere in the process moves the reported value
// without any serve-side bookkeeping.
func TestArenaBytesGaugeTracksLiveArenas(t *testing.T) {
	s := New(testModels(), quietConfig(Config{}))
	url, _ := startServer(t, s)

	scrape := func() string {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		page, _ := io.ReadAll(resp.Body)
		for _, line := range strings.Split(string(page), "\n") {
			if strings.HasPrefix(line, "brainy_arena_bytes ") {
				return strings.TrimPrefix(line, "brainy_arena_bytes ")
			}
		}
		t.Fatalf("no brainy_arena_bytes sample in:\n%s", page)
		return ""
	}

	before := scrape()
	a := mem.NewArena(nil, 1<<16)
	a.Alloc(1, 1) // reserves the first 64 KiB chunk
	after := scrape()
	if before == after {
		t.Fatalf("gauge did not move after arena reservation: %s", after)
	}
	runtime.KeepAlive(a)
}
