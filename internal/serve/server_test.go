package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/training"
)

// testModels builds a deterministic registry without the expensive training
// loop: an untrained network with a fixed seed predicts reproducibly, which
// is all the service plumbing under test needs.
func testModels() *training.ModelSet {
	set := training.NewModelSet()
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	cands := adt.CandidatesWithOriginal(tgt.Kind, tgt.OrderAware)
	cfg := ann.DefaultConfig()
	cfg.Seed = 7
	set.Put(&training.Model{
		Target:     tgt,
		Arch:       "Core2",
		Candidates: cands,
		Net:        ann.New(profile.NumFeatures, len(cands), cfg),
	})
	return set
}

func quietConfig(cfg Config) Config {
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	return cfg
}

// traceBody renders profiles in the JSON-lines trace format.
func traceBody(t *testing.T, profiles []profile.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := profile.WriteTrace(&buf, profiles); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startServer runs a Server on a loopback port and returns its base URL and
// a shutdown func.
func startServer(t *testing.T, s *Server) (string, context.CancelFunc) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return "http://" + ln.Addr().String(), cancel
}

func postAdvise(t *testing.T, url string, body []byte, arch string) (*http.Response, AdviseResponse) {
	t.Helper()
	target := url + "/v1/advise"
	if arch != "" {
		target += "?arch=" + arch
	}
	resp, err := http.Post(target, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out AdviseResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding advise response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, out
}

// TestAdviseMatchesCLIPlan is the end-to-end contract: for an identical
// trace and architecture, the service answers with exactly the plan and
// report the brainy CLI computes via core.Analyze.
func TestAdviseMatchesCLIPlan(t *testing.T) {
	models := testModels()
	s := New(models, quietConfig(Config{}))
	url, _ := startServer(t, s)

	profiles := []profile.Profile{
		vectorProfile("app/hot.cache", 800),
		vectorProfile("app/cold.list", 50),
	}
	body := traceBody(t, profiles)

	resp, got := postAdvise(t, url, body, "Core2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	// What the CLI prints for the same trace+arch (cmd/brainy is a thin
	// wrapper over core.Analyze + Report.Plan).
	want := core.New(models).Analyze(profiles, "Core2")
	if got.Arch != want.Arch || got.Profiles != 2 {
		t.Fatalf("arch=%q profiles=%d", got.Arch, got.Profiles)
	}
	if !reflect.DeepEqual(got.Plan, want.Plan()) {
		t.Fatalf("service plan diverges from CLI plan:\n got %+v\nwant %+v", got.Plan, want.Plan())
	}
	if !reflect.DeepEqual(got.Suggestions, want.Suggestions) {
		t.Fatalf("service suggestions diverge:\n got %+v\nwant %+v", got.Suggestions, want.Suggestions)
	}
	if len(got.Suggestions) != 2 || got.Suggestions[0].Context != "app/hot.cache" {
		t.Fatalf("report not prioritized by cycle share: %+v", got.Suggestions)
	}
}

func TestAdviseAcceptsJSONArray(t *testing.T) {
	s := New(testModels(), quietConfig(Config{}))
	url, _ := startServer(t, s)
	lines := traceBody(t, []profile.Profile{vectorProfile("a", 100), vectorProfile("b", 100)})
	recs := strings.Split(strings.TrimSpace(string(lines)), "\n")
	array := []byte("[" + strings.Join(recs, ",") + "]")
	resp, got := postAdvise(t, url, array, "")
	if resp.StatusCode != http.StatusOK || got.Profiles != 2 {
		t.Fatalf("status=%d profiles=%d", resp.StatusCode, got.Profiles)
	}
	if got.Arch != "Core2" { // DefaultArch filled in
		t.Fatalf("arch = %q", got.Arch)
	}
}

func TestAdviseSkipsUnknownModels(t *testing.T) {
	s := New(testModels(), quietConfig(Config{}))
	url, _ := startServer(t, s)
	p := vectorProfile("known", 100)
	q := p
	q.Kind = adt.KindSet
	q.Context = "unknown"
	resp, got := postAdvise(t, url, traceBody(t, []profile.Profile{p, q}), "Core2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(got.Suggestions) != 1 || len(got.Skipped) != 1 || got.Skipped[0] != "unknown" {
		t.Fatalf("skip handling: %+v", got)
	}
}

func TestAdviseCacheHitsAndMetrics(t *testing.T) {
	s := New(testModels(), quietConfig(Config{}))
	url, _ := startServer(t, s)
	body := traceBody(t, []profile.Profile{vectorProfile("a", 200)})

	if resp, _ := postAdvise(t, url, body, "Core2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first advise status = %d", resp.StatusCode)
	}
	if s.Metrics().CacheMisses.Value() == 0 {
		t.Fatal("first request did not miss the cache")
	}
	// Same trace again: the inference must come from the cache, and the
	// per-request Context must be re-stamped.
	resp, got := postAdvise(t, url, body, "Core2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second advise status = %d", resp.StatusCode)
	}
	if s.Metrics().CacheHits.Value() == 0 {
		t.Fatal("identical request did not hit the cache")
	}
	if len(got.Suggestions) != 1 || got.Suggestions[0].Context != "a" {
		t.Fatalf("cached suggestion lost its context: %+v", got.Suggestions)
	}

	// The exposition page reflects the traffic.
	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	page, _ := io.ReadAll(mresp.Body)
	text := string(page)
	for _, want := range []string{
		`brainy_requests_total{path="/v1/advise",code="200"} 2`,
		"brainy_cache_hits_total 1",
		"brainy_cache_misses_total 1",
		`brainy_inferences_total{arch="Core2"} 1`,
		"brainy_profiles_analyzed_total 2",
		"brainy_request_duration_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, text)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := New(testModels(), quietConfig(Config{}))
	url, _ := startServer(t, s)
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Models != 1 {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}
}

func TestAdviseRejections(t *testing.T) {
	s := New(testModels(), quietConfig(Config{MaxBodyBytes: 256, MaxProfiles: 1}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/advise", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post("this is not json"); code != http.StatusBadRequest {
		t.Fatalf("garbage body: %d, want 400", code)
	}
	if code := post(""); code != http.StatusBadRequest {
		t.Fatalf("empty body: %d, want 400", code)
	}
	// A single well-formed record bigger than the byte cap: the decoder
	// hits the MaxBytesReader limit mid-token.
	huge := `{"context":"` + strings.Repeat("a", 4096) + `"}`
	if code := post(huge); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", code)
	}
	// Two tiny records exceed MaxProfiles=1 without tripping the byte cap.
	if code := post(`{"context":"a"}` + "\n" + `{"context":"b"}`); code != http.StatusBadRequest {
		t.Fatalf("too many records: %d, want 400", code)
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/advise")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET advise: %d, want 405", resp.StatusCode)
	}
}

func TestAdviseTimeout(t *testing.T) {
	// A nanosecond deadline expires before the inference-slot wait, so the
	// handler must answer 408 deterministically.
	s := New(testModels(), quietConfig(Config{RequestTimeout: time.Nanosecond}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := traceBody(t, []profile.Profile{vectorProfile("a", 50)})
	resp, err := http.Post(ts.URL+"/v1/advise", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408", resp.StatusCode)
	}
}

// TestGracefulShutdownDrains checks the SIGTERM contract: a request already
// in flight when shutdown begins still completes, and the listener stops
// accepting new connections afterwards.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(testModels(), quietConfig(Config{ShutdownGrace: 5 * time.Second}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String()

	// Open a request whose body arrives slowly: the handler blocks in the
	// streaming decoder while we shut the server down around it.
	pr, pw := io.Pipe()
	type result struct {
		resp *http.Response
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, url+"/v1/advise?arch=Core2", pr)
		resp, err := http.DefaultClient.Do(req)
		resc <- result{resp, err}
	}()

	body := traceBody(t, []profile.Profile{vectorProfile("inflight", 100)})
	half := len(body) / 2
	if _, err := pw.Write(body[:half]); err != nil {
		t.Fatal(err)
	}
	cancel() // begin the drain with the request mid-flight
	time.Sleep(50 * time.Millisecond)
	if _, err := pw.Write(body[half:]); err != nil {
		t.Fatalf("finishing in-flight body: %v", err)
	}
	pw.Close()

	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", res.err)
	}
	defer res.resp.Body.Close()
	var out AdviseResponse
	if err := json.NewDecoder(res.resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if res.resp.StatusCode != http.StatusOK || len(out.Suggestions) != 1 {
		t.Fatalf("drained request: status=%d %+v", res.resp.StatusCode, out)
	}

	if err := <-served; err != nil {
		t.Fatalf("Serve = %v, want clean drain", err)
	}
	// The listener is closed: new connections must fail.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

func TestConcurrentAdvise(t *testing.T) {
	// Hammer the server from several goroutines; run under -race in CI.
	s := New(testModels(), quietConfig(Config{MaxConcurrent: 2}))
	url, _ := startServer(t, s)
	const workers, perWorker = 6, 5
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				body := traceBody(t, []profile.Profile{vectorProfile(fmt.Sprintf("w%d", w), 50+10*i)})
				resp, err := http.Post(url+"/v1/advise?arch=Core2", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Metrics().Requests.Total(); got != workers*perWorker {
		t.Fatalf("request counter = %d, want %d", got, workers*perWorker)
	}
}
