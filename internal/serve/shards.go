package serve

import (
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/profile"
	"repro/internal/serve/flight"
	"repro/internal/serve/shard"
)

// advisorShard is one vertical slice of the server's hot state. Every
// request key — the inference cache key on the advise path, the instance
// key on the ingest path — hashes to exactly one shard, and that shard
// exclusively owns the corresponding LRU cache, timeline store, and drift
// detector. Two requests contend only when they address the same shard, so
// lock contention falls 1/N instead of every request serializing on one
// mutex; nothing on either hot path takes a lock owned by another shard.
//
// The batcher is the shard's single evaluation goroutine: advise cache
// misses queue here and are coalesced (bounded batch size, bounded linger)
// into one matrix pass through the ANN — concurrency across shards,
// batching within one.
type advisorShard struct {
	srv       *Server
	id        int
	cache     *lruCache
	timelines *timelineStore
	drifts    *drift.Detector
	batcher   *shard.Batcher[*inferSlot]

	// flight journals this shard's advise decisions (nil when recording is
	// disabled — every journaling site is a nil check away from free).
	flight *flight.Ring
	// rollup is this shard's incremental contribution to /v1/rollup.
	rollup *rollupState
}

// inferSlot is one pending inference travelling from the advise handler to
// a shard's batch loop and back: inputs by value, results written into the
// slot, completion signalled through the request's WaitGroup. idx is the
// profile's position in the request, so the handler can reassemble results
// in request order regardless of batching.
type inferSlot struct {
	p    *profile.Profile
	arch string
	key  cacheKey
	idx  int

	// reqID and start carry decision provenance into the batch loop: which
	// request queued this inference and when, so the journaled record can
	// report submit-to-resolution latency.
	reqID string
	start time.Time

	sug core.Suggestion
	err error
	wg  *sync.WaitGroup
}

// shardForKey routes an inference key to its owning shard.
func (s *Server) shardForKey(k cacheKey) *advisorShard {
	return s.shards[shard.PickBytes(len(s.shards), k[:])]
}

// shardForInstance routes an instance key ("context#instance") to its
// owning shard.
func (s *Server) shardForInstance(key string) *advisorShard {
	return s.shards[shard.Pick(len(s.shards), key)]
}

// runBatch is a shard's evaluation pass: it runs on the shard's single
// batching goroutine, so everything here is serialized per shard by
// construction. Identical inferences inside the batch (a zipf-hot key
// missing the cache from many concurrent requests at once) are deduplicated
// and evaluated once; distinct inferences sharing a model go through the
// net as one ProbabilitiesBatch matrix pass via core.SuggestBatch.
// recordAdvise journals one advise verdict into the shard's flight ring.
// A nil err is verdict "ok"; otherwise "no-model" (the only way Suggest
// fails). With recording disabled (nil ring) this is one branch and no
// allocation — the zero-cost contract the AllocsPerRun test pins.
func (sh *advisorShard) recordAdvise(p *profile.Profile, arch string, key cacheKey, sug core.Suggestion, err error, reqID, path string, batchID uint64, batchSize int, lat time.Duration) {
	if sh.flight == nil {
		return
	}
	rec := flight.Record{
		Source:    "advise",
		Verdict:   "ok",
		RequestID: reqID,
		Context:   p.Context,
		Shard:     sh.id,
		Arch:      arch,
		Digest:    hex.EncodeToString(key[:8]),
		Kind:      p.Kind.String(),
		Path:      path,
		BatchID:   batchID,
		BatchSize: batchSize,
		Registry:  sh.srv.fingerprint,
		Drift:     sh.srv.driftStateFor(p.Context),
		LatencyNs: lat.Nanoseconds(),
		Features:  p.Vector(),
	}
	if err != nil {
		rec.Verdict = "no-model"
	} else {
		rec.Suggested = sug.Suggested.String()
		rec.Confidence = sug.Confidence
		if sug.Explanation != nil {
			rec.Probs = make([]flight.KindProb, len(sug.Explanation.Probs))
			for i, kp := range sug.Explanation.Probs {
				rec.Probs[i] = flight.KindProb{Kind: kp.Kind.String(), Prob: kp.Prob}
			}
		}
	}
	sh.flight.Append(rec)
}

// recordDrift journals one confirmed phase-drift event, so the journal
// interleaves advice and the divergences that later overturn it.
func (sh *advisorShard) recordDrift(ev *drift.Event, rec *profile.WindowRecord) {
	if sh.flight == nil {
		return
	}
	sh.flight.Append(flight.Record{
		Source:     "drift",
		Verdict:    "confirmed",
		Context:    ev.Context,
		Instance:   ev.InstanceKey,
		Shard:      sh.id,
		Kind:       ev.From.String(),
		Suggested:  ev.To.String(),
		Confidence: ev.Confidence,
		Registry:   sh.srv.fingerprint,
		WindowSeq:  ev.Seq,
		Votes:      ev.Votes,
		Features:   rec.Vector(),
	})
}

// driftStateFor summarizes the drift detector's view of a context for a
// journaled record: best-effort, keyed on the convention that instance 0
// carries a context's primary timeline. "" means never seen on the ingest
// path, "stable" means advice never moved, "a->b" is the latest move.
func (s *Server) driftStateFor(context string) string {
	st, ok := s.shardForInstance(context + "#0").drifts.Status(context + "#0")
	if !ok || !st.Advised {
		return ""
	}
	if !st.Drifted() {
		return "stable"
	}
	return st.Initial.String() + "->" + st.Current.String()
}

func (sh *advisorShard) runBatch(items []*inferSlot) {
	// One batch ID per evaluation pass: every decision journaled below
	// carries it, so /debug/decisions can reassemble which requests were
	// coalesced into one matrix pass.
	var batchID uint64
	if sh.flight != nil {
		batchID = sh.srv.batchSeq.Add(1)
	}
	// Group identical inferences, preserving first-seen order so the
	// evaluation sequence is deterministic.
	order := make([]cacheKey, 0, len(items))
	groups := make(map[cacheKey][]*inferSlot, len(items))
	for _, it := range items {
		if _, ok := groups[it.key]; !ok {
			order = append(order, it.key)
		}
		groups[it.key] = append(groups[it.key], it)
	}

	// Group representatives by architecture (one SuggestBatch call per
	// arch; the key already encodes arch, so reps of one key share it).
	archOrder := make([]string, 0, 1)
	byArch := make(map[string][]*inferSlot, 1)
	for _, k := range order {
		rep := groups[k][0]
		if _, ok := byArch[rep.arch]; !ok {
			archOrder = append(archOrder, rep.arch)
		}
		byArch[rep.arch] = append(byArch[rep.arch], rep)
	}

	for _, arch := range archOrder {
		reps := byArch[arch]
		ps := make([]*profile.Profile, len(reps))
		for i, rep := range reps {
			ps[i] = rep.p
		}
		sugs, errs := sh.srv.brainy.SuggestBatch(ps, arch)
		var evaluated uint64
		for i, rep := range reps {
			if errs[i] != nil {
				for _, it := range groups[rep.key] {
					it.err = errs[i]
				}
				continue
			}
			evaluated++
			cached := sugs[i]
			cached.Context = "" // per-request fields stay out of the cache
			cached.CyclesPct = 0
			sh.cache.Put(rep.key, cached)
			for _, it := range groups[rep.key] {
				sug := cached
				sug.Context = it.p.Context
				it.sug = sug
			}
		}
		if evaluated > 0 {
			sh.srv.metrics.Inferences.With(fmt.Sprintf("arch=%q", arch)).Add(evaluated)
		}
	}

	// Journal before signalling completion: by the time the handler's
	// response is on the wire, the decision is already queryable on
	// /debug/decisions (the round-trip brainy-explain depends on).
	if sh.flight != nil {
		for _, it := range items {
			sh.recordAdvise(it.p, it.arch, it.key, it.sug, it.err, it.reqID, "batch",
				batchID, len(items), time.Since(it.start))
		}
	}
	for _, it := range items {
		it.wg.Done()
	}
}

// cachingSuggester wraps Brainy.Suggest with this shard's LRU for the
// synchronous callers (the drift detector evaluates one blended window at a
// time during ingest, where batching latency would be pure cost).
// Model-derived fields are cached under the canonical inference key;
// per-request fields (Context, CyclesPct) are re-stamped on every hit. The
// shard uses its own cache even when the key would hash elsewhere — an
// occasional duplicate entry across shards is cheaper than taking another
// shard's lock on the ingest hot path.
func (sh *advisorShard) cachingSuggester() core.Suggester {
	return func(p *profile.Profile, arch string) (core.Suggestion, error) {
		key := inferenceKey(p, arch)
		if sug, ok := sh.cache.Get(key); ok {
			sh.srv.metrics.CacheHits.Inc()
			sug.Context = p.Context
			return sug, nil
		}
		sh.srv.metrics.CacheMisses.Inc()
		sug, err := sh.srv.brainy.Suggest(p, arch)
		if err != nil {
			return sug, err
		}
		sh.srv.metrics.Inferences.With(fmt.Sprintf("arch=%q", arch)).Inc()
		cached := sug
		cached.Context = ""
		cached.CyclesPct = 0
		sh.cache.Put(key, cached)
		return sug, nil
	}
}

// timelineCount sums retained timelines across shards.
func (s *Server) timelineCount() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.timelines.len()
	}
	return n
}

// ceilDiv divides a bound across shards, rounding up so N shards never
// retain less than the configured total.
func ceilDiv(total, parts int) int {
	if parts <= 1 {
		return total
	}
	return (total + parts - 1) / parts
}
