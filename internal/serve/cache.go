package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/profile"
)

// cacheKey is the canonical identity of one inference: a SHA-256 over
// everything the model (and the memory estimator) reads from a profile. Two
// requests profiling the same behavior on the same architecture hash to the
// same key regardless of calling context or cycle share, which are
// per-request report fields, not model inputs.
type cacheKey [sha256.Size]byte

// inferenceKey derives the cache key for one (profile, arch) inference.
func inferenceKey(p *profile.Profile, arch string) cacheKey {
	h := sha256.New()
	var scratch [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	writeU64(uint64(p.Kind))
	if p.OrderAware {
		writeU64(1)
	} else {
		writeU64(0)
	}
	h.Write([]byte(arch))
	h.Write([]byte{0}) // separate arch from the numeric tail
	// MaxLen and ElemSize feed adt.EstimatedBytes directly (the feature
	// vector only sees them log-compressed), so key on the exact values.
	writeU64(p.Stats.MaxLen)
	writeU64(p.Stats.ElemSize)
	for _, f := range p.Vector() {
		writeU64(math.Float64bits(f))
	}
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// lruCache is a bounded, mutex-guarded LRU of inference results. The cached
// Suggestion carries only model-derived fields; callers re-stamp the
// per-request Context and CyclesPct.
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[cacheKey]*list.Element
}

type lruEntry struct {
	key cacheKey
	val core.Suggestion
}

// newLRUCache builds a cache holding at most max entries; max <= 0 disables
// caching (every Get misses, Put is a no-op).
func newLRUCache(max int) *lruCache {
	return &lruCache{max: max, order: list.New(), items: make(map[cacheKey]*list.Element)}
}

// Get returns the cached suggestion and marks it most recently used.
func (c *lruCache) Get(k cacheKey) (core.Suggestion, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return core.Suggestion{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or refreshes an entry, evicting the least recently used when
// the bound is exceeded.
func (c *lruCache) Put(k cacheKey, v core.Suggestion) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*lruEntry).val = v
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&lruEntry{key: k, val: v})
	for len(c.items) > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached inferences.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
