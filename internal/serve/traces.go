package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// tracesPath is where the tail-sampled slow-trace buffer mounts.
const tracesPath = "/debug/traces"

// TracesResponse is the ?format=json body of GET /debug/traces: the retained
// traces, oldest first, after filtering.
type TracesResponse struct {
	SchemaVersion        int               `json:"schema_version"`
	Enabled              bool              `json:"enabled"`
	Capacity             int               `json:"capacity"`
	Total                uint64            `json:"total"`   // traces ever retained, including overwritten
	Pending              int               `json:"pending"` // traces still buffering (root not yet ended)
	DroppedSpans         uint64            `json:"dropped_spans"`
	SlowThresholdSeconds float64           `json:"slow_threshold_seconds"`
	Returned             int               `json:"returned"`
	Traces               []telemetry.Trace `json:"traces"`
}

// traces snapshots the buffer and applies the reason/limit filter.
func (s *Server) traces(reason string, limit int) TracesResponse {
	buf := s.cfg.Traces
	resp := TracesResponse{
		SchemaVersion:        1,
		Enabled:              buf != nil,
		Capacity:             buf.Cap(),
		SlowThresholdSeconds: buf.Slow().Seconds(),
		Traces:               []telemetry.Trace{},
	}
	resp.Pending, _, resp.Total, resp.DroppedSpans = buf.Stats()
	for _, tr := range buf.Snapshot() {
		if reason != "" && tr.Reason != reason {
			continue
		}
		resp.Traces = append(resp.Traces, tr)
	}
	if limit > 0 && len(resp.Traces) > limit {
		resp.Traces = resp.Traces[len(resp.Traces)-limit:]
	}
	resp.Returned = len(resp.Traces)
	return resp
}

// handleTraces serves the tail-sampled traces. ?format=text (default)
// renders span trees for terminals; ?format=json returns the raw spans.
// Filters: reason (slow|error), limit (newest N).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	reason := q.Get("reason")
	if reason != "" && reason != "slow" && reason != "error" {
		writeError(w, http.StatusBadRequest, "reason must be slow or error")
		return
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	resp := s.traces(reason, limit)
	switch q.Get("format") {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, renderTracesText(resp))
	case "json":
		writeJSON(w, http.StatusOK, resp)
	default:
		writeError(w, http.StatusBadRequest, "format must be text or json")
	}
}

// fmtSpanDur renders a span duration at terminal precision.
func fmtSpanDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.0fus", float64(d)/1e3)
	}
}

// renderTracesText renders each retained trace as an indented span tree,
// oldest trace first. Spans show durations, never wall-clock stamps, so a
// fixed span set renders byte-identically — the golden-test contract.
func renderTracesText(resp TracesResponse) string {
	var b strings.Builder
	b.WriteString("brainy slow-trace buffer\n")
	threshold := "errors-only"
	if resp.SlowThresholdSeconds > 0 {
		threshold = fmtSpanDur(time.Duration(resp.SlowThresholdSeconds * 1e9))
	}
	fmt.Fprintf(&b, "retained %d/%d  captured %d  pending %d  dropped-spans %d  slow-threshold %s\n\n",
		len(resp.Traces), resp.Capacity, resp.Total, resp.Pending, resp.DroppedSpans, threshold)
	if !resp.Enabled {
		b.WriteString("tail sampling disabled: restart with -trace-slow\n")
		return b.String()
	}
	if len(resp.Traces) == 0 {
		b.WriteString("no traces retained (nothing slow or errored, or none match the filter)\n")
		return b.String()
	}
	for i := range resp.Traces {
		renderTraceTree(&b, &resp.Traces[i])
	}
	b.WriteString("filters: ?reason=slow|error ?limit=  (&format=json for raw spans)\n")
	return b.String()
}

// renderTraceTree writes one trace as a parent-indented span tree.
func renderTraceTree(b *strings.Builder, tr *telemetry.Trace) {
	fmt.Fprintf(b, "TRACE <%s> root=%s duration=%s spans=%d\n",
		tr.Reason, tr.Root.Name, fmtSpanDur(tr.Root.Duration()), len(tr.Spans))
	children := make(map[telemetry.ID][]*telemetry.SpanData, len(tr.Spans))
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if sp.ParentID != 0 {
			children[sp.ParentID] = append(children[sp.ParentID], sp)
		}
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].Start != kids[j].Start {
				return kids[i].Start < kids[j].Start
			}
			return kids[i].SpanID < kids[j].SpanID
		})
	}
	seen := make(map[telemetry.ID]bool, len(tr.Spans))
	renderSpan(b, &tr.Root, children, seen, 1)
	// Spans whose parent was dropped by the pending-state bounds still
	// belong to the trace; render them flat rather than losing them.
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if !seen[sp.SpanID] {
			fmt.Fprintf(b, "  ~ (orphan) ")
			renderSpanLine(b, sp)
		}
	}
	b.WriteByte('\n')
}

// renderSpan writes one span line and recurses into its children.
func renderSpan(b *strings.Builder, sp *telemetry.SpanData, children map[telemetry.ID][]*telemetry.SpanData, seen map[telemetry.ID]bool, depth int) {
	if seen[sp.SpanID] {
		return
	}
	seen[sp.SpanID] = true
	b.WriteString(strings.Repeat("  ", depth))
	renderSpanLine(b, sp)
	for _, kid := range children[sp.SpanID] {
		renderSpan(b, kid, children, seen, depth+1)
	}
}

// renderSpanLine writes a span's name, duration, and attributes.
func renderSpanLine(b *strings.Builder, sp *telemetry.SpanData) {
	fmt.Fprintf(b, "%s %s", sp.Name, fmtSpanDur(sp.Duration()))
	for _, a := range sp.Attrs {
		fmt.Fprintf(b, "  %s=%v", a.Key, a.Value)
	}
	b.WriteByte('\n')
}
