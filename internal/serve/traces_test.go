package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/telemetry"
)

// fixtureTraces builds a deterministic retained-trace set: fixed IDs and
// start/end stamps, so the text rendering is byte-stable.
func fixtureTraces() []telemetry.Trace {
	ms := func(n int64) int64 { return n * int64(time.Millisecond) }
	root1 := telemetry.SpanData{
		TraceID: 0x10, SpanID: 0x11, Name: "request",
		Start: ms(0), End: ms(42),
		Attrs: []telemetry.Attr{
			{Key: "method", Value: "POST"},
			{Key: "path", Value: "/v1/advise"},
			{Key: "status", Value: 200},
		},
	}
	advise1 := telemetry.SpanData{
		TraceID: 0x10, SpanID: 0x12, ParentID: 0x11, Name: "advise",
		Start: ms(1), End: ms(41),
		Attrs: []telemetry.Attr{{Key: "profiles", Value: 4000}},
	}
	infer1 := telemetry.SpanData{
		TraceID: 0x10, SpanID: 0x13, ParentID: 0x12, Name: "infer",
		Start: ms(2), End: ms(40),
	}
	root2 := telemetry.SpanData{
		TraceID: 0x20, SpanID: 0x21, Name: "request",
		Start: ms(100), End: ms(101),
		Attrs: []telemetry.Attr{
			{Key: "status", Value: 500},
			{Key: "error", Value: true},
		},
	}
	return []telemetry.Trace{
		{TraceID: 0x10, Root: root1, Spans: []telemetry.SpanData{advise1, infer1, root1}, Reason: "slow"},
		{TraceID: 0x20, Root: root2, Spans: []telemetry.SpanData{root2}, Reason: "error"},
	}
}

// TestTracesTextGolden pins the /debug/traces text rendering byte-for-byte.
// Regenerate with:
//
//	go test ./internal/serve -run TestTracesTextGolden -update-golden
func TestTracesTextGolden(t *testing.T) {
	resp := TracesResponse{
		SchemaVersion:        1,
		Enabled:              true,
		Capacity:             16,
		Total:                2,
		SlowThresholdSeconds: 0.005,
		Traces:               fixtureTraces(),
		Returned:             2,
	}
	got := []byte(renderTracesText(resp))
	goldenPath := filepath.Join("testdata", "traces.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("traces text drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestTracesFilters(t *testing.T) {
	buf := telemetry.NewTraceBuffer(5*time.Millisecond, 16)
	for _, tr := range fixtureTraces() {
		for _, sp := range tr.Spans {
			buf.ExportSpan(sp)
		}
	}
	s := New(testModels(), quietConfig(Config{SampleInterval: -1, Traces: buf}))
	t.Cleanup(s.Close)

	all := s.traces("", 0)
	if all.Returned != 2 || all.Total != 2 {
		t.Fatalf("unfiltered: %+v", all)
	}
	slow := s.traces("slow", 0)
	if slow.Returned != 1 || slow.Traces[0].Reason != "slow" {
		t.Fatalf("reason filter: %+v", slow)
	}
	limited := s.traces("", 1)
	if limited.Returned != 1 || limited.Traces[0].Reason != "error" {
		t.Fatalf("limit keeps newest: %+v", limited)
	}
}

// TestTracesEndToEnd runs a real request through a tracing server with a
// nanosecond slow threshold (every trace retains) and reads it back from
// /debug/traces in both formats.
func TestTracesEndToEnd(t *testing.T) {
	buf := telemetry.NewTraceBuffer(time.Nanosecond, 8)
	s := New(testModels(), quietConfig(Config{
		SampleInterval: -1,
		Tracer:         telemetry.NewTracer(telemetry.Fanout(buf)),
		Traces:         buf,
	}))
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := traceBody(t, []profile.Profile{vectorProfile("traced", 100)})
	if resp, _ := postAdvise(t, ts.URL, body, "Core2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("advise status = %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + tracesPath + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var out TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !out.Enabled || out.Returned == 0 {
		t.Fatalf("no traces retained: %+v", out)
	}
	var reqTrace *telemetry.Trace
	for i := range out.Traces {
		if out.Traces[i].Root.Name == "request" && out.Traces[i].Root.Attr("path") == "/v1/advise" {
			reqTrace = &out.Traces[i]
		}
	}
	if reqTrace == nil || reqTrace.Reason != "slow" {
		t.Fatalf("advise trace missing or misclassified: %+v", out.Traces)
	}
	// The advise handler's child span rode along under the same trace.
	childNames := map[string]bool{}
	for _, sp := range reqTrace.Spans {
		childNames[sp.Name] = true
	}
	if !childNames["advise"] {
		t.Fatalf("advise child span not in trace: %v", childNames)
	}

	text, err := http.Get(ts.URL + tracesPath)
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(text.Body)
	text.Body.Close()
	if !strings.Contains(string(page), "TRACE <slow> root=request") {
		t.Fatalf("text rendering missing trace header:\n%s", page)
	}
}

// TestTracesDisabled pins the disabled rendering: no buffer configured means
// an explaining text page, not an error.
func TestTracesDisabled(t *testing.T) {
	s := New(testModels(), quietConfig(Config{SampleInterval: -1}))
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + tracesPath)
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(page), "tail sampling disabled") {
		t.Fatalf("disabled traces page: %d\n%s", resp.StatusCode, page)
	}
}
