package serve

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/profile"
)

func vectorProfile(context string, n int) profile.Profile {
	m := machine.New(machine.Core2())
	c := profile.NewContainer(adt.KindVector, m, 8, context, false)
	for i := uint64(0); i < uint64(n); i++ {
		c.Insert(i)
	}
	for i := 0; i < n; i++ {
		c.Find(uint64(i * 3))
	}
	return c.Snapshot()
}

func TestInferenceKeyIgnoresRequestFields(t *testing.T) {
	p := vectorProfile("site-a", 100)
	q := p
	q.Context = "site-b" // calling context is a report field, not a model input
	if inferenceKey(&p, "Core2") != inferenceKey(&q, "Core2") {
		t.Fatal("context changed the inference key")
	}
}

func TestInferenceKeyDiscriminates(t *testing.T) {
	p := vectorProfile("site", 100)
	base := inferenceKey(&p, "Core2")
	if inferenceKey(&p, "Atom") == base {
		t.Fatal("arch not part of the key")
	}
	q := p
	q.Kind = adt.KindList
	if inferenceKey(&q, "Core2") == base {
		t.Fatal("kind not part of the key")
	}
	r := p
	r.OrderAware = true
	if inferenceKey(&r, "Core2") == base {
		t.Fatal("order-awareness not part of the key")
	}
	s := p
	s.Stats.Count[0]++ // perturb the feature vector
	if inferenceKey(&s, "Core2") == base {
		t.Fatal("feature vector not part of the key")
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRUCache(2)
	p1, p2, p3 := vectorProfile("a", 10), vectorProfile("b", 20), vectorProfile("c", 30)
	k1, k2, k3 := inferenceKey(&p1, "Core2"), inferenceKey(&p2, "Core2"), inferenceKey(&p3, "Core2")
	c.Put(k1, core.Suggestion{Confidence: 0.1})
	c.Put(k2, core.Suggestion{Confidence: 0.2})
	if _, ok := c.Get(k1); !ok { // refresh k1: k2 becomes LRU
		t.Fatal("k1 missing before eviction")
	}
	c.Put(k3, core.Suggestion{Confidence: 0.3})
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if _, ok := c.Get(k2); ok {
		t.Fatal("least recently used entry survived")
	}
	if v, ok := c.Get(k1); !ok || v.Confidence != 0.1 {
		t.Fatal("refreshed entry evicted")
	}
	if v, ok := c.Get(k3); !ok || v.Confidence != 0.3 {
		t.Fatal("newest entry missing")
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	c := newLRUCache(4)
	p := vectorProfile("a", 10)
	k := inferenceKey(&p, "Core2")
	c.Put(k, core.Suggestion{Confidence: 0.5})
	c.Put(k, core.Suggestion{Confidence: 0.9})
	if c.Len() != 1 {
		t.Fatalf("len = %d after duplicate put", c.Len())
	}
	if v, _ := c.Get(k); v.Confidence != 0.9 {
		t.Fatalf("value not refreshed: %f", v.Confidence)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRUCache(-1)
	p := vectorProfile("a", 10)
	k := inferenceKey(&p, "Core2")
	c.Put(k, core.Suggestion{})
	if _, ok := c.Get(k); ok || c.Len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}
