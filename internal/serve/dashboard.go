package serve

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strings"

	"repro/internal/drift"
	"repro/internal/opstats"
	"repro/internal/profile"
	"repro/internal/telemetry/tsdb"
)

// debugBrainyPath is where the live status page mounts.
const debugBrainyPath = "/debug/brainy"

// DashboardWindow is one timeline cell in the JSON dashboard: where the
// window sits on the instance's op axis and what its operation mix was.
type DashboardWindow struct {
	Seq     int     `json:"seq"`
	StartOp uint64  `json:"start_op"`
	EndOp   uint64  `json:"end_op"`
	Len     int     `json:"len"`
	Find    float64 `json:"find"`
	Append  float64 `json:"append"`
	Scan    float64 `json:"scan"`
	Erase   float64 `json:"erase"`
}

// DashboardRow is one instance in the JSON dashboard.
type DashboardRow struct {
	Key        string            `json:"key"`
	Context    string            `json:"context"`
	Instance   int               `json:"instance"`
	Kind       string            `json:"kind"`
	Windows    int               `json:"windows"`
	Ops        uint64            `json:"ops"`
	OutOfOrder int               `json:"out_of_order"`
	Touch      uint64            `json:"touch"` // global recency stamp of the last ingest
	Advised    bool              `json:"advised"`
	Initial    string            `json:"initial"` // first advised kind ("" until advised)
	Current    string            `json:"current"` // currently advised kind
	Confidence float64           `json:"confidence"`
	Drifted    bool              `json:"drifted"`
	Events     int               `json:"events"`
	Mix        string            `json:"mix"`   // one glyph per retained window
	Trend      string            `json:"trend"` // ops-per-window sparkline, oldest first
	Timeline   []DashboardWindow `json:"timeline"`
}

// DashboardResponse is the ?format=json dashboard body — what brainy-top
// polls. The JSON shape is a locked schema: rows are sorted by instance
// key (consumers wanting recency order sort on Touch), and SchemaVersion
// only moves on a breaking change. Version 2 added schema_version, touch,
// and the key-sorted row order.
type DashboardResponse struct {
	SchemaVersion int            `json:"schema_version"`
	Instances     int            `json:"instances"`
	MaxInstances  int            `json:"max_instances"`
	Windows       uint64         `json:"windows"`
	DriftEvents   uint64         `json:"drift_events"`
	DriftSkipped  uint64         `json:"drift_skipped"`
	OutOfOrder    uint64         `json:"out_of_order"`
	Rows          []DashboardRow `json:"rows"`
}

// handleDebugBrainy renders the windowed-profiling status page: one row per
// retained instance timeline (most recently active first) with its feature
// timeline, current vs. initial advice, drift flag, and confidence.
// ?format=text (the default) renders for terminals and golden tests,
// ?format=json feeds brainy-top, ?format=html renders for browsers.
func (s *Server) handleDebugBrainy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := s.dashboard()
	switch r.URL.Query().Get("format") {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, renderDashboardText(resp))
	case "json":
		// The JSON schema orders rows by instance key: stable across
		// requests regardless of ingest interleaving, so goldens and diffs
		// of two scrapes compare meaningfully. Text keeps recency order —
		// a terminal wants active instances on top.
		sort.Slice(resp.Rows, func(i, j int) bool { return resp.Rows[i].Key < resp.Rows[j].Key })
		writeJSON(w, http.StatusOK, resp)
	case "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := dashboardHTML.Execute(w, resp); err != nil {
			s.log.Warn("dashboard render", "error", err)
		}
	default:
		writeError(w, http.StatusBadRequest, "format must be text, json, or html")
	}
}

// dashboard assembles the response by merging every shard's timeline store
// and drift detector. Instance keys are unique across shards (each key
// lives on exactly one shard), and the per-ingest touch stamp restores the
// global most-recently-active order the single-store server rendered.
func (s *Server) dashboard() DashboardResponse {
	statuses := map[string]drift.Status{}
	for _, sh := range s.shards {
		for _, st := range sh.drifts.Statuses() {
			statuses[st.InstanceKey] = st
		}
	}
	resp := DashboardResponse{
		SchemaVersion: 2,
		MaxInstances:  s.cfg.MaxInstances,
		Windows:       s.metrics.ProfileWindows.Value(),
		DriftEvents:   s.metrics.DriftEvents.Value(),
		DriftSkipped:  s.metrics.DriftSkipped.Value(),
		OutOfOrder:    s.metrics.WindowsOutOfOrder.Value(),
		Rows:          []DashboardRow{},
	}
	var views []timelineView
	for _, sh := range s.shards {
		views = append(views, sh.timelines.views()...)
	}
	sort.Slice(views, func(i, j int) bool { return views[i].Touch > views[j].Touch })
	for _, tl := range views {
		row := DashboardRow{
			Key:        tl.Key,
			Context:    tl.Context,
			Instance:   tl.Instance,
			Kind:       tl.Kind.String(),
			Windows:    tl.Windows,
			Ops:        tl.Ops,
			OutOfOrder: tl.OutOfOrder,
			Touch:      tl.Touch,
			Timeline:   []DashboardWindow{},
		}
		if st, ok := statuses[tl.Key]; ok && st.Advised {
			row.Advised = true
			row.Initial = st.Initial.String()
			row.Current = st.Current.String()
			row.Confidence = st.Confidence
			row.Drifted = st.Drifted()
			row.Events = st.Events
		}
		var mix strings.Builder
		lens := make([]float64, 0, len(tl.Recent))
		for i := range tl.Recent {
			cell := dashboardWindow(&tl.Recent[i])
			row.Timeline = append(row.Timeline, cell)
			mix.WriteByte(mixGlyph(cell))
			lens = append(lens, float64(cell.Len))
		}
		row.Mix = mix.String()
		// The trend derives from the retained windows themselves, not the
		// sampler's wall clock, so a fixed ingestion sequence renders a
		// byte-identical sparkline — the same golden contract as Mix.
		row.Trend = tsdb.Spark(lens)
		resp.Rows = append(resp.Rows, row)
	}
	resp.Instances = len(resp.Rows)
	return resp
}

// dashboardWindow reduces one window to its dashboard cell.
func dashboardWindow(w *profile.WindowRecord) DashboardWindow {
	s := &w.Stats
	total := float64(s.TotalCalls())
	if total == 0 {
		total = 1
	}
	frac := func(ops ...opstats.Op) float64 {
		var n uint64
		for _, op := range ops {
			n += s.Count[op]
		}
		return float64(n) / total
	}
	return DashboardWindow{
		Seq:     w.Seq,
		StartOp: w.StartOp,
		EndOp:   w.EndOp,
		Len:     w.Len,
		Find:    frac(opstats.OpFind),
		Append:  frac(opstats.OpInsert, opstats.OpPushBack, opstats.OpPushFront),
		Scan:    frac(opstats.OpIterate),
		Erase:   frac(opstats.OpErase, opstats.OpPopBack, opstats.OpPopFront),
	}
}

// mixGlyph names a window by its dominant operation class: f(ind),
// a(ppend), s(can), e(rase), or '.' when nothing clears half the calls.
// A timeline like "aaaaffff" is a phase change you can read at a glance.
func mixGlyph(c DashboardWindow) byte {
	switch {
	case c.Find >= 0.5:
		return 'f'
	case c.Append >= 0.5:
		return 'a'
	case c.Scan >= 0.5:
		return 's'
	case c.Erase >= 0.5:
		return 'e'
	}
	return '.'
}

// renderDashboardText renders the page for terminals. The output contains
// no timestamps or addresses, so a fixed ingestion sequence renders
// byte-identically — the golden-test contract.
func renderDashboardText(d DashboardResponse) string {
	var b strings.Builder
	b.WriteString("brainy windowed profiling\n")
	fmt.Fprintf(&b, "instances %d/%d  windows %d  drift-events %d  drift-skipped %d  out-of-order %d\n\n",
		d.Instances, d.MaxInstances, d.Windows, d.DriftEvents, d.DriftSkipped, d.OutOfOrder)
	if len(d.Rows) == 0 {
		b.WriteString("no instance timelines yet: POST snapshot windows to /v1/profiles\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-32s %-9s %6s %8s  %-22s %5s %6s  %-22s %s\n",
		"INSTANCE", "KIND", "WIN", "OPS", "ADVICE", "CONF", "DRIFT", "TIMELINE", "TREND")
	for _, row := range d.Rows {
		advice := "-"
		conf := "    -"
		if row.Advised {
			advice = row.Initial
			if row.Current != row.Initial {
				advice = row.Initial + " -> " + row.Current
			}
			conf = fmt.Sprintf("%5.2f", row.Confidence)
		}
		driftCol := "."
		if row.Drifted {
			driftCol = fmt.Sprintf("DRIFT%d", row.Events)
		}
		fmt.Fprintf(&b, "%-32s %-9s %6d %8d  %-22s %s %6s  %-22s %s\n",
			row.Key, row.Kind, row.Windows, row.Ops, advice, conf, driftCol, row.Mix, row.Trend)
	}
	b.WriteString("\nmix glyphs: a=append f=find s=scan e=erase .=mixed (one per retained window, oldest first)\n")
	b.WriteString("trend: ops-per-window sparkline over the same retained windows\n")
	return b.String()
}

// dashboardHTML is the browser rendering of the same data.
var dashboardHTML = template.Must(template.New("dashboard").Parse(`<!doctype html>
<html><head><title>brainy windowed profiling</title><style>
body { font-family: monospace; margin: 2em; }
table { border-collapse: collapse; }
th, td { border: 1px solid #999; padding: 4px 8px; text-align: left; }
.drift { color: #b00; font-weight: bold; }
.mix { letter-spacing: 2px; }
</style></head><body>
<h1>brainy windowed profiling</h1>
<p>instances {{.Instances}}/{{.MaxInstances}} &middot; windows {{.Windows}} &middot;
drift events {{.DriftEvents}} &middot; drift skipped {{.DriftSkipped}} &middot; out-of-order {{.OutOfOrder}}</p>
{{if .Rows}}<table>
<tr><th>instance</th><th>kind</th><th>windows</th><th>ops</th><th>advice</th><th>confidence</th><th>drift</th><th>timeline</th><th>trend</th></tr>
{{range .Rows}}<tr>
<td>{{.Key}}</td><td>{{.Kind}}</td><td>{{.Windows}}</td><td>{{.Ops}}</td>
<td>{{if .Advised}}{{.Initial}}{{if ne .Current .Initial}} &rarr; {{.Current}}{{end}}{{else}}-{{end}}</td>
<td>{{if .Advised}}{{printf "%.2f" .Confidence}}{{else}}-{{end}}</td>
<td>{{if .Drifted}}<span class="drift">DRIFT&times;{{.Events}}</span>{{else}}-{{end}}</td>
<td class="mix">{{.Mix}}</td>
<td class="mix">{{.Trend}}</td>
</tr>{{end}}
</table>{{else}}<p>no instance timelines yet: POST snapshot windows to /v1/profiles</p>{{end}}
<p>mix glyphs: a=append f=find s=scan e=erase .=mixed (one per retained window, oldest first)</p>
</body></html>
`))
