package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPickStableAndBounded: routing is a pure function of the key, inside
// [0, n), and spreads distinct keys across shards rather than piling onto
// one.
func TestPickStableAndBounded(t *testing.T) {
	const n = 8
	seen := map[int]int{}
	for i := 0; i < 1024; i++ {
		key := fmt.Sprintf("app/site%d#%d", i, i%3)
		s := Pick(n, key)
		if s < 0 || s >= n {
			t.Fatalf("Pick(%d, %q) = %d out of range", n, key, s)
		}
		if again := Pick(n, key); again != s {
			t.Fatalf("Pick not stable for %q: %d then %d", key, s, again)
		}
		seen[s]++
	}
	for s := 0; s < n; s++ {
		if seen[s] == 0 {
			t.Fatalf("shard %d got no keys out of 1024: %v", s, seen)
		}
	}
	if Pick(1, "anything") != 0 || Pick(0, "anything") != 0 {
		t.Fatal("degenerate shard counts must route to 0")
	}
}

// TestHashBytesMatchesString: the two hash entry points agree, so a key
// routed by its string form and by its raw bytes lands on the same shard.
func TestHashBytesMatchesString(t *testing.T) {
	for _, s := range []string{"", "a", "phasedemo/working-set#0", "\x00\xff"} {
		if HashString(s) != HashBytes([]byte(s)) {
			t.Fatalf("hash mismatch for %q", s)
		}
	}
}

// TestBatcherCoalesces: items submitted together flush as one batch bounded
// by MaxBatch, in submission order.
func TestBatcherCoalesces(t *testing.T) {
	var mu sync.Mutex
	var batches [][]int
	block := make(chan struct{})
	b := NewBatcher[int](BatcherConfig{MaxBatch: 4, Linger: time.Hour, Queue: 64}, func(items []int) {
		<-block
		mu.Lock()
		batches = append(batches, append([]int(nil), items...))
		mu.Unlock()
	})
	ctx := context.Background()
	// First item occupies the loop (blocked in run after linger skip via
	// drain below); queue nine more so they coalesce behind it.
	for i := 0; i < 10; i++ {
		if err := b.Submit(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	b.Drain() // no linger: flush everything that is queued
	close(block)
	b.Close()
	mu.Lock()
	defer mu.Unlock()
	var got []int
	for _, batch := range batches {
		if len(batch) == 0 || len(batch) > 4 {
			t.Fatalf("batch size %d out of (0,4]: %v", len(batch), batches)
		}
		got = append(got, batch...)
	}
	if len(got) != 10 {
		t.Fatalf("items across batches = %d, want 10: %v", len(got), batches)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("items reordered: %v", got)
		}
	}
	if len(batches) >= 10 {
		t.Fatalf("no coalescing happened: %d single-item batches", len(batches))
	}
}

// TestBatcherLingerFlushesPartialBatch: a lone item must not wait for a
// full batch — it flushes once the linger expires.
func TestBatcherLingerFlushesPartialBatch(t *testing.T) {
	flushed := make(chan int, 1)
	b := NewBatcher[int](BatcherConfig{MaxBatch: 1024, Linger: 5 * time.Millisecond, Queue: 8}, func(items []int) {
		flushed <- len(items)
	})
	defer b.Close()
	if err := b.Submit(context.Background(), 42); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-flushed:
		if n != 1 {
			t.Fatalf("partial flush size = %d, want 1", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("linger never flushed the partial batch")
	}
}

// TestBatcherSubmitHonorsContext: a full queue blocks Submit until the
// caller's deadline, then fails with the context error instead of hanging.
func TestBatcherSubmitHonorsContext(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	b := NewBatcher[int](BatcherConfig{MaxBatch: 1, Linger: 0, Queue: 1}, func([]int) {
		<-block
	})
	ctx := context.Background()
	// Fill the loop (one item in run) and the queue (one buffered).
	for i := 0; i < 2; i++ {
		if err := b.Submit(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	short, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if err := b.Submit(short, 99); err != context.DeadlineExceeded {
		t.Fatalf("Submit on full queue = %v, want DeadlineExceeded", err)
	}
}

// TestBatcherCloseRunsEverythingAccepted is the zero-loss drain contract:
// items accepted before Close are all run, Close returns only after the
// last batch finished, and Submit after Close fails cleanly.
func TestBatcherCloseRunsEverythingAccepted(t *testing.T) {
	var ran atomic.Int64
	b := NewBatcher[int](BatcherConfig{MaxBatch: 8, Linger: time.Hour, Queue: 256}, func(items []int) {
		ran.Add(int64(len(items)))
	})
	const items = 100
	for i := 0; i < items; i++ {
		if err := b.Submit(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	if got := ran.Load(); got != items {
		t.Fatalf("ran %d of %d accepted items after Close", got, items)
	}
	if err := b.Submit(context.Background(), 1); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

// TestBatcherMetricsHooks: OnQueue deltas balance to zero once the queue is
// empty, and OnFlush sees every item exactly once.
func TestBatcherMetricsHooks(t *testing.T) {
	var depth, flushed atomic.Int64
	b := NewBatcher[int](BatcherConfig{
		MaxBatch: 4,
		Linger:   time.Millisecond,
		Queue:    64,
		OnQueue:  func(d int) { depth.Add(int64(d)) },
		OnFlush:  func(n int) { flushed.Add(int64(n)) },
	}, func([]int) {})
	for i := 0; i < 32; i++ {
		if err := b.Submit(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	if got := depth.Load(); got != 0 {
		t.Fatalf("queue-depth deltas sum to %d, want 0", got)
	}
	if got := flushed.Load(); got != 32 {
		t.Fatalf("flush observations cover %d items, want 32", got)
	}
}

// TestBatcherConcurrentSubmitters hammers Submit from many goroutines with
// Close racing behind them; every successful Submit must be matched by a
// run, with no panics or lost items. Run under -race in CI.
func TestBatcherConcurrentSubmitters(t *testing.T) {
	var ran atomic.Int64
	b := NewBatcher[int](BatcherConfig{MaxBatch: 16, Linger: 100 * time.Microsecond, Queue: 128}, func(items []int) {
		ran.Add(int64(len(items)))
	})
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := b.Submit(context.Background(), i); err == nil {
					accepted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	b.Close()
	if ran.Load() != accepted.Load() {
		t.Fatalf("ran %d, accepted %d", ran.Load(), accepted.Load())
	}
}
