// Package shard holds the scaling primitives behind the sharded advisor:
// deterministic key-to-shard routing and a per-shard request batcher.
//
// The serving layer partitions its hot state (inference cache, instance
// timelines, drift detectors) into N shards, each owned by the requests
// that hash to it. Routing is pure arithmetic — no shared state — so the
// only synchronization left on a hot path is the owning shard's own lock,
// which is never contended by traffic addressed to other shards.
//
// The Batcher is the other half of the architecture: instead of bounding
// concurrent ANN evaluations with a global semaphore (which serializes
// misses exactly where the work is heaviest), each shard runs one batching
// goroutine that coalesces queued inferences — up to a bounded batch size,
// waiting at most a linger interval for batch-mates — into a single matrix
// pass through the network.
package shard

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrClosed is returned by Submit after Close has begun: the caller should
// fail its request rather than retry, because the owning loop is exiting.
var ErrClosed = errors.New("shard: batcher closed")

// fnv64 constants (FNV-1a).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashString returns the FNV-1a 64-bit hash of s, inlined to keep the
// per-request routing cost to a few nanoseconds with zero allocations.
func HashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// HashBytes is HashString for byte slices (cache keys are raw digests).
func HashBytes(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime64
	}
	return h
}

// Pick maps a string key onto one of n shards.
func Pick(n int, key string) int {
	if n <= 1 {
		return 0
	}
	return int(HashString(key) % uint64(n))
}

// PickBytes maps a byte key (e.g. a SHA-256 inference key) onto one of n
// shards.
func PickBytes(n int, key []byte) int {
	if n <= 1 {
		return 0
	}
	return int(HashBytes(key) % uint64(n))
}

// BatcherConfig tunes one Batcher. MaxBatch and Queue must be positive;
// Linger may be zero (flush as fast as the loop can drain the queue).
type BatcherConfig struct {
	// MaxBatch bounds the number of items coalesced into one run call.
	MaxBatch int
	// Linger bounds how long the first item of a batch waits for
	// batch-mates before a partial batch flushes.
	Linger time.Duration
	// Queue is the submission buffer capacity; Submit blocks (up to its
	// context) when the queue is full — closed-loop backpressure.
	Queue int
	// OnQueue, when non-nil, observes queue-depth changes: +1 per accepted
	// submission, -1 per item moved into a batch. Wire it to a gauge.
	OnQueue func(delta int)
	// OnFlush, when non-nil, observes the size of every flushed batch.
	// Wire it to a histogram.
	OnFlush func(n int)
}

// Batcher coalesces submitted items into bounded batches and hands them to
// one run function on a single owning goroutine. It is the per-shard
// evaluation loop: items queue concurrently, batches run strictly
// sequentially, so the run function needs no internal locking for
// shard-owned state.
type Batcher[T any] struct {
	cfg BatcherConfig
	run func([]T)

	ch    chan T
	drain chan struct{}
	done  chan struct{}

	drainOnce sync.Once
	closeOnce sync.Once

	// mu guards the closed flag against the Submit/Close race: Close takes
	// the write side once, so a Submit can never send on a closed channel.
	mu     sync.RWMutex
	closed bool
}

// NewBatcher starts the batching goroutine. run is called with 1..MaxBatch
// items; it must not retain the slice.
func NewBatcher[T any](cfg BatcherConfig, run func([]T)) *Batcher[T] {
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}
	if cfg.Queue < 1 {
		cfg.Queue = cfg.MaxBatch
	}
	b := &Batcher[T]{
		cfg:   cfg,
		run:   run,
		ch:    make(chan T, cfg.Queue),
		drain: make(chan struct{}),
		done:  make(chan struct{}),
	}
	go b.loop()
	return b
}

// Submit queues one item, blocking while the queue is full until ctx is
// done. It returns ctx.Err() on expiry and ErrClosed after Close.
func (b *Batcher[T]) Submit(ctx context.Context, item T) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	select {
	case b.ch <- item:
		b.queued(1)
		return nil
	default:
	}
	select {
	case b.ch <- item:
		b.queued(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Depth returns the number of items currently queued (not yet moved into a
// batch).
func (b *Batcher[T]) Depth() int { return len(b.ch) }

// Drain switches the batcher to immediate flushing: queued items are
// batched without waiting out the linger interval. Submissions remain
// accepted; call it when shutdown begins so in-flight requests complete as
// fast as the evaluator allows.
func (b *Batcher[T]) Drain() {
	b.drainOnce.Do(func() { close(b.drain) })
}

// Close drains and stops the batcher: every item already accepted is still
// batched and run, then the loop exits. Safe to call more than once.
// Submissions racing with Close get ErrClosed instead of a lost item.
func (b *Batcher[T]) Close() {
	b.Drain()
	b.closeOnce.Do(func() {
		b.mu.Lock()
		b.closed = true
		close(b.ch)
		b.mu.Unlock()
	})
	<-b.done
}

func (b *Batcher[T]) queued(delta int) {
	if b.cfg.OnQueue != nil {
		b.cfg.OnQueue(delta)
	}
}

func (b *Batcher[T]) draining() bool {
	select {
	case <-b.drain:
		return true
	default:
		return false
	}
}

// loop is the owning goroutine: block for the first item, collect
// batch-mates until the batch is full / the linger expires / the queue goes
// momentarily idle under drain, then run the batch. A closed channel
// delivers its remaining buffered items before reporting closed, so Close
// loses nothing.
func (b *Batcher[T]) loop() {
	defer close(b.done)
	batch := make([]T, 0, b.cfg.MaxBatch)
	timer := time.NewTimer(time.Hour)
	stopTimer(timer)
	for {
		first, ok := <-b.ch
		if !ok {
			return
		}
		b.queued(-1)
		batch = append(batch[:0], first)
		if !b.draining() && b.cfg.Linger > 0 {
			timer.Reset(b.cfg.Linger)
		}
	collect:
		for len(batch) < b.cfg.MaxBatch {
			if b.draining() || b.cfg.Linger <= 0 {
				select {
				case it, ok := <-b.ch:
					if !ok {
						break collect
					}
					b.queued(-1)
					batch = append(batch, it)
				default:
					break collect
				}
				continue
			}
			select {
			case it, ok := <-b.ch:
				if !ok {
					break collect
				}
				b.queued(-1)
				batch = append(batch, it)
			case <-timer.C:
				break collect
			case <-b.drain:
				// Switched to drain mode mid-collect: fall through to the
				// non-blocking branch on the next iteration.
			}
		}
		stopTimer(timer)
		if b.cfg.OnFlush != nil {
			b.cfg.OnFlush(len(batch))
		}
		b.run(batch)
	}
}

// stopTimer stops t and drains a concurrently fired tick, leaving t safe to
// Reset (the pre-1.23 timer contract).
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}
