package serve

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/drift"
	"repro/internal/profile"
	"repro/internal/telemetry"
)

// ProfilesResponse is the body of a successful POST /v1/profiles: ingestion
// accounting plus any drift events this batch confirmed.
type ProfilesResponse struct {
	Arch       string        `json:"arch"`
	Accepted   int           `json:"accepted"`  // windows ingested
	Instances  int           `json:"instances"` // timelines retained after this batch
	OutOfOrder int           `json:"out_of_order"`
	Unadvised  int           `json:"unadvised"` // windows the drift suggester could not evaluate
	Drift      []drift.Event `json:"drift"`     // events confirmed by this batch
}

// errTooManyWindows aborts the streaming decoder when a batch exceeds the
// record bound (shared with /v1/advise).
var errTooManyWindows = errors.New("too many window records")

// handleProfiles ingests a snapshot-window stream (profile.SnapshotExporter
// output, JSON lines or one JSON array): each window lands in its
// instance's bounded timeline and runs through the drift detector. The
// endpoint is designed for repeated POSTs from a live application — state
// accumulates across requests, bounded by the instance LRU.
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	arch := r.URL.Query().Get("arch")
	if arch == "" {
		arch = s.cfg.DefaultArch
	}

	ctx, span := telemetry.StartSpan(r.Context(), "profiles")
	defer span.End()
	span.SetStr("arch", arch)
	span.SetStr("request_id", RequestIDFromContext(ctx))

	resp := ProfilesResponse{Arch: arch, Drift: []drift.Event{}}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	err := profile.DecodeWindows(body, func(rec *profile.WindowRecord) error {
		if resp.Accepted >= s.cfg.MaxProfiles {
			return errTooManyWindows
		}
		// The instance key routes the window to the shard owning its
		// timeline and drift state; everything below touches only that
		// shard (plus shared atomic counters).
		sh := s.shardForInstance(rec.InstanceKey())
		out := sh.timelines.add(rec, s.touchSeq.Add(1))
		sh.rollup.ingestWindow(rec, out)
		if out.outOfOrder {
			resp.OutOfOrder++
			s.metrics.WindowsOutOfOrder.Inc()
		}
		if out.evicted {
			s.metrics.TimelineEvictions.Inc()
		}
		resp.Accepted++
		s.metrics.ProfileWindows.Inc()
		s.metrics.WindowOps.Observe(float64(rec.Ops()))

		ev, derr := sh.drifts.Observe(rec, arch)
		if derr != nil {
			resp.Unadvised++ // no model for this kind/arch: timeline still grows
			s.metrics.DriftSkipped.Inc()
		}
		if ev != nil {
			resp.Drift = append(resp.Drift, *ev)
			sh.rollup.countDrift(rec.Kind)
			sh.recordDrift(ev, rec)
			s.log.Info("phase drift", "instance", ev.InstanceKey,
				"from", ev.From.String(), "to", ev.To.String(),
				"window", ev.Seq, "confidence", ev.Confidence)
		}
		return nil
	})
	switch {
	case err == nil:
	case errors.Is(err, errTooManyWindows):
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch exceeds %d records", s.cfg.MaxProfiles))
		return
	case isMaxBytesError(err):
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	default:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if resp.Accepted == 0 {
		writeError(w, http.StatusBadRequest, "empty stream: send JSON-lines or a JSON array of window records")
		return
	}
	resp.Instances = s.timelineCount()
	s.metrics.TimelineInstances.Set(float64(resp.Instances))
	span.SetInt("windows", int64(resp.Accepted))
	span.SetInt("drift_events", int64(len(resp.Drift)))
	writeJSON(w, http.StatusOK, resp)
}
