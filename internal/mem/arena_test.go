package mem

import (
	"runtime"
	"testing"
	"time"
)

func TestArenaBumpAndReuse(t *testing.T) {
	c := NewCounting()
	a := NewArena(c, 4096)

	a1 := a.Alloc(100, 8)
	a2 := a.Alloc(100, 8)
	if c.Allocs != 1 {
		t.Fatalf("two slot allocs should reserve one chunk, model saw %d", c.Allocs)
	}
	if a2 != a1+104 { // 100 rounds to 104
		t.Fatalf("bump allocation not contiguous: %#x then %#x", a1, a2)
	}
	a.Free(a1, 100)
	if got := a.Alloc(100, 8); got != a1 {
		t.Fatalf("freed slot not recycled: want %#x got %#x", a1, got)
	}
	if a.Chunks() != 1 || a.Bytes() != 4096 {
		t.Fatalf("chunks=%d bytes=%d, want 1 chunk of 4096", a.Chunks(), a.Bytes())
	}
}

func TestArenaAlignment(t *testing.T) {
	a := NewArena(NewCounting(), 4096)
	for i := 0; i < 10; i++ {
		addr := a.Alloc(200, 64)
		if uint64(addr)%64 != 0 {
			t.Fatalf("alloc %d not 64-aligned: %#x", i, addr)
		}
	}
}

func TestArenaOversizedRequest(t *testing.T) {
	c := NewCounting()
	a := NewArena(c, 1024)
	a.Alloc(16, 8)
	big := a.Alloc(10000, 8)
	if uint64(big)%8 != 0 {
		t.Fatalf("oversized alloc misaligned: %#x", big)
	}
	if a.Chunks() != 2 {
		t.Fatalf("oversized request should get a dedicated chunk, have %d chunks", a.Chunks())
	}
	// The small chunk must still serve small allocations.
	small := a.Alloc(16, 8)
	if small == 0 {
		t.Fatal("small alloc failed after oversized chunk")
	}
}

func TestArenaRelease(t *testing.T) {
	c := NewCounting()
	a := NewArena(c, 2048)
	for i := 0; i < 100; i++ {
		a.Alloc(128, 8)
	}
	chunks := a.Chunks()
	if chunks < 2 {
		t.Fatalf("expected multiple chunks, got %d", chunks)
	}
	a.Release()
	if c.Frees != uint64(chunks) {
		t.Fatalf("release freed %d chunks at the model, want %d", c.Frees, chunks)
	}
	if a.Bytes() != 0 || c.Live != 0 {
		t.Fatalf("after release: arena bytes %d, model live %d", a.Bytes(), c.Live)
	}
	// The arena must be reusable after Release.
	if a.Alloc(64, 8) == 0 {
		t.Fatal("alloc after release failed")
	}
}

func TestTotalArenaBytesGauge(t *testing.T) {
	base := TotalArenaBytes()
	a := NewArena(NewCounting(), 8192)
	a.Alloc(16, 8)
	if got := TotalArenaBytes(); got != base+8192 {
		t.Fatalf("gauge after alloc: %d, want %d", got, base+8192)
	}
	a.Release()
	if got := TotalArenaBytes(); got != base {
		t.Fatalf("gauge after release: %d, want %d", got, base)
	}
}

func TestArenaFinalizerDecrementsGauge(t *testing.T) {
	// Let arenas leaked by other tests finalize first so the baseline is
	// stable.
	settle := func() uint64 {
		prev := TotalArenaBytes()
		for {
			runtime.GC()
			runtime.GC() // finalizers queue on one cycle, run by the next
			time.Sleep(time.Millisecond)
			cur := TotalArenaBytes()
			if cur == prev {
				return cur
			}
			prev = cur
		}
	}
	base := settle()
	func() {
		a := NewArena(NewCounting(), 8192)
		a.Alloc(16, 8)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for TotalArenaBytes() != base {
		if time.Now().After(deadline) {
			t.Fatalf("gauge stuck at %d after GC, want %d", TotalArenaBytes(), base)
		}
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
}
