// Package mem defines the memory-event model that connects containers to a
// machine. Every container in this repository performs its allocations and
// data accesses through a Model, so the same container code can run against
// the no-op model (plain library use), a counting model (tests), or the full
// microarchitecture simulator in internal/machine (training and evaluation).
package mem

import "sync/atomic"

// Addr is a simulated virtual address.
type Addr uint64

// BranchSite identifies a static conditional-branch location inside a
// container's code, e.g. "the capacity check in vector.PushBack". The
// machine's branch predictor is indexed by the site, mimicking a real
// predictor indexed by program counter.
type BranchSite uint32

// Model receives the memory and control-flow events a container generates.
//
// Alloc returns the base address of a fresh block. Free releases it; models
// may recycle addresses. Read and Write touch size bytes starting at addr.
// Branch reports the outcome of a data-dependent conditional branch at the
// given static site.
type Model interface {
	Alloc(size, align uint64) Addr
	Free(addr Addr, size uint64)
	Read(addr Addr, size uint64)
	Write(addr Addr, size uint64)
	Branch(site BranchSite, taken bool)
	// Work reports pure ALU work (in abstract units of one simple
	// operation) that is not visible as memory traffic or branches, e.g.
	// computing a hash function over a key.
	Work(units float64)
}

// Nop is a Model that discards every event. It is the zero-cost default for
// plain library use. Nop is safe for concurrent use: its address counter is
// shared process-wide, so containers running on worker pools may allocate
// through it simultaneously.
type Nop struct{}

var nopNext atomic.Uint64

func init() { nopNext.Store(1 << 20) }

// Alloc returns monotonically increasing fake addresses so that distinct
// blocks never alias even under the no-op model, including when many
// goroutines allocate concurrently.
func (Nop) Alloc(size, align uint64) Addr {
	if align == 0 {
		align = 1
	}
	for {
		cur := nopNext.Load()
		a := (cur + align - 1) &^ (align - 1)
		if nopNext.CompareAndSwap(cur, a+size) {
			return Addr(a)
		}
	}
}

func (Nop) Free(Addr, uint64)       {}
func (Nop) Read(Addr, uint64)       {}
func (Nop) Write(Addr, uint64)      {}
func (Nop) Branch(BranchSite, bool) {}
func (Nop) Work(float64)            {}

// Counting is a Model that tallies events without simulating a machine.
// It is useful in unit tests to assert that containers report the accesses
// and branches they are supposed to.
type Counting struct {
	next      Addr
	Allocs    uint64
	Frees     uint64
	Reads     uint64
	Writes    uint64
	ReadB     uint64 // bytes read
	WriteB    uint64 // bytes written
	Taken     uint64
	NotTaken  uint64
	Live      int64   // live bytes
	WorkUnits float64 // accumulated ALU work
}

// NewCounting returns a counting model whose address space starts at 1 MiB.
func NewCounting() *Counting { return &Counting{next: 1 << 20} }

func (c *Counting) Alloc(size, align uint64) Addr {
	if align == 0 {
		align = 1
	}
	a := (uint64(c.next) + align - 1) &^ (align - 1)
	c.next = Addr(a + size)
	c.Allocs++
	c.Live += int64(size)
	return Addr(a)
}

func (c *Counting) Free(addr Addr, size uint64) {
	c.Frees++
	c.Live -= int64(size)
}

func (c *Counting) Read(addr Addr, size uint64) {
	c.Reads++
	c.ReadB += size
}

func (c *Counting) Write(addr Addr, size uint64) {
	c.Writes++
	c.WriteB += size
}

func (c *Counting) Branch(site BranchSite, taken bool) {
	if taken {
		c.Taken++
	} else {
		c.NotTaken++
	}
}

// Work implements Model.
func (c *Counting) Work(units float64) { c.WorkUnits += units }

// Branches returns the total number of branch events seen.
func (c *Counting) Branches() uint64 { return c.Taken + c.NotTaken }
