package mem

import (
	"runtime"
	"sync/atomic"
)

// Arena is a region allocator layered over a Model: it reserves large
// contiguous chunks from the underlying model and hands out small slots by
// bumping a cursor, so a container built on it gets (a) simulated addresses
// that are dense and sequential — the machine simulator sees real spatial
// locality instead of one scattered allocation per node — and (b) a zero-
// allocation steady state, because freed slots go to per-size free lists and
// the model only ever sees one Alloc per chunk.
//
// Reuse is keyed by the rounded slot size. A caller must request the same
// alignment for every allocation of a given size (containers allocate a few
// fixed node shapes, so this holds by construction); the arena does not
// re-align recycled slots.
//
// Arena is not safe for concurrent use, matching the containers it backs.
type Arena struct {
	model     Model
	chunkSize uint64
	chunks    []arenaChunk
	cur       uint64 // bump cursor inside the newest chunk
	curEnd    uint64 // end of the newest chunk
	free      map[uint64][]Addr
	reserved  uint64
}

type arenaChunk struct {
	base Addr
	size uint64
}

// DefaultArenaChunk is the chunk size NewArena uses when none is given:
// large enough that node allocations amortize to nothing, small enough that
// a tiny container does not look huge to the simulator.
const DefaultArenaChunk = 1 << 16

// arenaBytes tracks the chunk bytes currently reserved by all live arenas in
// the process, for the brainy_arena_bytes telemetry gauge.
var arenaBytes atomic.Int64

// TotalArenaBytes reports the chunk bytes currently reserved by every live
// Arena in the process.
func TotalArenaBytes() uint64 {
	v := arenaBytes.Load()
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// NewArena returns an arena drawing chunks of chunkSize bytes from model.
// A nil model defaults to Nop; a zero chunkSize to DefaultArenaChunk.
func NewArena(model Model, chunkSize uint64) *Arena {
	if model == nil {
		model = Nop{}
	}
	if chunkSize == 0 {
		chunkSize = DefaultArenaChunk
	}
	a := &Arena{
		model:     model,
		chunkSize: chunkSize,
		free:      make(map[uint64][]Addr),
	}
	// Keep the process-wide gauge honest for arenas that are dropped
	// without an explicit Release (short-lived training candidates).
	runtime.SetFinalizer(a, func(fin *Arena) {
		if fin.reserved > 0 {
			arenaBytes.Add(-int64(fin.reserved))
		}
	})
	return a
}

func arenaRound(size uint64) uint64 {
	if size == 0 {
		return 8
	}
	return (size + 7) &^ 7
}

// Alloc returns a slot of size bytes aligned to align (0 means 8),
// recycling a previously freed slot of the same rounded size when one
// exists. Oversized requests get a dedicated chunk.
func (a *Arena) Alloc(size, align uint64) Addr {
	size = arenaRound(size)
	if align == 0 {
		align = 8
	}
	if lst := a.free[size]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		a.free[size] = lst[:len(lst)-1]
		return addr
	}
	at := (a.cur + align - 1) &^ (align - 1)
	if at+size > a.curEnd {
		cs := a.chunkSize
		if size+align > cs {
			cs = size + align
		}
		base := a.model.Alloc(cs, 64)
		a.chunks = append(a.chunks, arenaChunk{base: base, size: cs})
		a.reserved += cs
		arenaBytes.Add(int64(cs))
		a.cur = uint64(base)
		a.curEnd = uint64(base) + cs
		at = (a.cur + align - 1) &^ (align - 1)
	}
	a.cur = at + size
	return Addr(at)
}

// Free returns a slot to the arena for reuse by a later Alloc of the same
// rounded size. The chunk memory stays reserved until Release.
func (a *Arena) Free(addr Addr, size uint64) {
	size = arenaRound(size)
	a.free[size] = append(a.free[size], addr)
}

// Release frees every chunk back to the model and resets the arena to
// empty; it may be reused afterwards.
func (a *Arena) Release() {
	for _, c := range a.chunks {
		a.model.Free(c.base, c.size)
	}
	if a.reserved > 0 {
		arenaBytes.Add(-int64(a.reserved))
	}
	a.chunks = nil
	a.reserved = 0
	a.cur = 0
	a.curEnd = 0
	for k := range a.free {
		delete(a.free, k)
	}
}

// Bytes reports the chunk bytes this arena currently reserves from its
// model.
func (a *Arena) Bytes() uint64 { return a.reserved }

// Chunks reports how many chunks the arena has reserved. Intended for
// tests asserting the amortization actually happens.
func (a *Arena) Chunks() int { return len(a.chunks) }
