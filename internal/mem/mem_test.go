package mem

import (
	"sort"
	"sync"
	"testing"
)

func TestNopAllocDistinct(t *testing.T) {
	var n Nop
	a := n.Alloc(64, 8)
	b := n.Alloc(64, 8)
	if a == b {
		t.Fatal("Nop.Alloc returned aliasing blocks")
	}
	if uint64(a)%8 != 0 || uint64(b)%8 != 0 {
		t.Fatal("Nop.Alloc ignored alignment")
	}
	// The remaining methods must be safe no-ops.
	n.Free(a, 64)
	n.Read(a, 8)
	n.Write(a, 8)
	n.Branch(1, true)
}

func TestCountingTallies(t *testing.T) {
	c := NewCounting()
	a := c.Alloc(100, 16)
	if uint64(a)%16 != 0 {
		t.Fatal("alignment ignored")
	}
	c.Read(a, 8)
	c.Read(a, 24)
	c.Write(a, 16)
	c.Branch(1, true)
	c.Branch(2, false)
	c.Branch(3, true)
	if c.Allocs != 1 || c.Reads != 2 || c.Writes != 1 {
		t.Fatalf("%+v", c)
	}
	if c.ReadB != 32 || c.WriteB != 16 {
		t.Fatalf("bytes: read %d write %d", c.ReadB, c.WriteB)
	}
	if c.Taken != 2 || c.NotTaken != 1 || c.Branches() != 3 {
		t.Fatalf("branches: %d/%d", c.Taken, c.NotTaken)
	}
	if c.Live != 100 {
		t.Fatalf("live = %d", c.Live)
	}
	c.Free(a, 100)
	if c.Live != 0 || c.Frees != 1 {
		t.Fatalf("after free: live=%d frees=%d", c.Live, c.Frees)
	}
}

func TestCountingAddressesMonotone(t *testing.T) {
	c := NewCounting()
	prev := c.Alloc(8, 8)
	for i := 0; i < 100; i++ {
		next := c.Alloc(8, 8)
		if next <= prev {
			t.Fatal("addresses not monotone")
		}
		prev = next
	}
}

// TestNopAllocConcurrent exercises the process-wide Nop address counter from
// many goroutines at once — the shape of PR 2's worker pool running
// containers on the no-op model. Run under -race it doubles as the data-race
// regression test; the overlap check below catches torn updates even
// without the race detector.
func TestNopAllocConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2000
		size       = 48
		align      = 16
	)
	var wg sync.WaitGroup
	got := make([][]Addr, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			addrs := make([]Addr, 0, perG)
			var m Nop
			for i := 0; i < perG; i++ {
				addrs = append(addrs, m.Alloc(size, align))
			}
			got[g] = addrs
		}()
	}
	wg.Wait()

	all := make([]Addr, 0, goroutines*perG)
	for _, addrs := range got {
		all = append(all, addrs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := 1; i < len(all); i++ {
		if uint64(all[i]) < uint64(all[i-1])+size {
			t.Fatalf("concurrent Nop allocs overlap: %#x then %#x (size %d)", all[i-1], all[i], size)
		}
	}
	for _, a := range all {
		if uint64(a)%align != 0 {
			t.Fatalf("misaligned Nop alloc %#x", a)
		}
	}
}
