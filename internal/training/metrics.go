package training

import (
	"io"

	"repro/internal/opstats"
	"repro/internal/telemetry"
)

// Registry is the training pipeline's central metric registry: every
// brainy_train_* counter is registered once, with HELP/TYPE metadata, and
// the whole family renders in one sorted pass (Expose).
var Registry = telemetry.NewRegistry()

// PipelineMetrics aggregates throughput counters for the training pipeline
// so long runs are observable: how many synthetic applications Phase-I has
// simulated, how many decisive labels it has found, how much simulated
// machine time has been burned, and how far Phase-II, validation, and model
// fitting have progressed. All fields are safe for concurrent use.
type PipelineMetrics struct {
	SeedsScanned    *opstats.Counter      // Phase-I applications generated and simulated
	LabelsFound     *opstats.Counter      // decisive (seed, best) pairs recorded
	CyclesSimulated *opstats.FloatCounter // simulated machine cycles across all phases
	EventsSimulated *opstats.Counter      // simulated machine events (memory ops, branches, allocator calls)
	Phase2Examples  *opstats.Counter      // labelled feature vectors produced
	Phase2Dropped   *opstats.Counter      // Phase-II examples dropped (winner outside candidates)
	ModelsTrained   *opstats.Counter      // ANNs fitted
	TargetsResumed  *opstats.Counter      // targets skipped entirely via checkpoint resume
	ValidationApps  *opstats.Counter      // validation applications simulated
}

// Metrics is the package-wide pipeline instrumentation, incremented by
// Phase1/Phase2/Validate/TrainArchs as they run.
var Metrics = PipelineMetrics{
	SeedsScanned:    Registry.Counter("brainy_train_seeds_scanned_total", "Phase-I applications generated and simulated."),
	LabelsFound:     Registry.Counter("brainy_train_labels_found_total", "Decisive (seed, best) pairs recorded by Phase-I."),
	CyclesSimulated: Registry.FloatCounter("brainy_train_simulated_cycles_total", "Simulated machine cycles across all phases."),
	EventsSimulated: Registry.Counter("brainy_train_simulated_events_total", "Simulated machine events (memory ops, branches, allocator calls)."),
	Phase2Examples:  Registry.Counter("brainy_train_phase2_examples_total", "Labelled feature vectors produced by Phase-II."),
	Phase2Dropped:   Registry.Counter("brainy_train_phase2_dropped_total", "Phase-II examples dropped (winner outside candidates)."),
	ModelsTrained:   Registry.Counter("brainy_train_models_trained_total", "ANNs fitted."),
	TargetsResumed:  Registry.Counter("brainy_train_targets_resumed_total", "Targets skipped entirely via checkpoint resume."),
	ValidationApps:  Registry.Counter("brainy_train_validation_apps_total", "Validation applications simulated."),
}

// Expose writes every counter, with HELP and TYPE metadata, in the
// Prometheus text exposition format under the brainy_train_* namespace.
func (m *PipelineMetrics) Expose(w io.Writer) {
	Registry.Expose(w)
}
