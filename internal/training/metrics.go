package training

import (
	"io"

	"repro/internal/opstats"
)

// PipelineMetrics aggregates throughput counters for the training pipeline
// so long runs are observable: how many synthetic applications Phase-I has
// simulated, how many decisive labels it has found, how much simulated
// machine time has been burned, and how far Phase-II and model fitting have
// progressed. All fields are safe for concurrent use.
type PipelineMetrics struct {
	SeedsScanned    opstats.Counter      // Phase-I applications generated and simulated
	LabelsFound     opstats.Counter      // decisive (seed, best) pairs recorded
	CyclesSimulated opstats.FloatCounter // simulated machine cycles across all phases
	Phase2Examples  opstats.Counter      // labelled feature vectors produced
	Phase2Dropped   opstats.Counter      // Phase-II examples dropped (winner outside candidates)
	ModelsTrained   opstats.Counter      // ANNs fitted
	TargetsResumed  opstats.Counter      // targets skipped entirely via checkpoint resume
}

// Metrics is the package-wide pipeline instrumentation, incremented by
// Phase1/Phase2/TrainArchs as they run.
var Metrics PipelineMetrics

// Expose writes every counter in the Prometheus text exposition format
// under the brainy_train_* namespace.
func (m *PipelineMetrics) Expose(w io.Writer) {
	m.SeedsScanned.Expose(w, "brainy_train_seeds_scanned_total", "")
	m.LabelsFound.Expose(w, "brainy_train_labels_found_total", "")
	m.CyclesSimulated.Expose(w, "brainy_train_simulated_cycles_total", "")
	m.Phase2Examples.Expose(w, "brainy_train_phase2_examples_total", "")
	m.Phase2Dropped.Expose(w, "brainy_train_phase2_dropped_total", "")
	m.ModelsTrained.Expose(w, "brainy_train_models_trained_total", "")
	m.TargetsResumed.Expose(w, "brainy_train_targets_resumed_total", "")
}
