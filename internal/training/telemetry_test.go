package training

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/telemetry"
)

// TestTracedTrainingRun is the pipeline-instrumentation acceptance test: a
// tiny training job runs with tracing enabled, and the exported trace must
// be structurally sound — spans nest (child intervals inside parents, end
// after start), every stage appears for every (target, arch) unit, and the
// simulator counter attributes carry real work.
func TestTracedTrainingRun(t *testing.T) {
	exp := &telemetry.MemoryExporter{}
	opt := quickOptions()
	targets := []adt.ModelTarget{
		{Kind: adt.KindVector, OrderAware: false},
		{Kind: adt.KindSet, OrderAware: false},
	}
	cfg := PipelineConfig{
		Workers:        4,
		Tracer:         telemetry.NewTracer(exp),
		ValidationApps: 3,
	}
	set, err := TrainArchs(context.Background(), []Options{opt}, quickANN(), targets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != len(targets) {
		t.Fatalf("trained %d models, want %d", set.Len(), len(targets))
	}

	spans := exp.Spans()
	byID := map[telemetry.ID]telemetry.SpanData{}
	byName := map[string][]telemetry.SpanData{}
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("span %s ends before it starts", s.Name)
		}
		byID[s.SpanID] = s
		byName[s.Name] = append(byName[s.Name], s)
	}

	// One root, one trace: every span carries the root's trace ID and a
	// resolvable parent chain with nested intervals.
	if n := len(byName["train"]); n != 1 {
		t.Fatalf("%d train root spans, want 1", n)
	}
	root := byName["train"][0]
	for _, s := range spans {
		if s.TraceID != root.TraceID {
			t.Fatalf("span %s is on trace %v, want %v", s.Name, s.TraceID, root.TraceID)
		}
		if s.SpanID == root.SpanID {
			continue
		}
		parent, ok := byID[s.ParentID]
		if !ok {
			t.Fatalf("span %s has unknown parent %v", s.Name, s.ParentID)
		}
		if s.Start < parent.Start || s.End > parent.End {
			t.Fatalf("span %s [%d,%d] does not nest in parent %s [%d,%d]",
				s.Name, s.Start, s.End, parent.Name, parent.Start, parent.End)
		}
	}

	// Every stage appears once per (target, arch) unit.
	for _, stage := range []string{"target", "phase1", "phase2", "fit", "validate"} {
		if n := len(byName[stage]); n != len(targets) {
			t.Fatalf("%d %q spans, want %d", n, stage, len(targets))
		}
	}

	// Simulation stages carry non-zero simulator counters.
	attrFloat := func(s telemetry.SpanData, key string) float64 {
		switch v := s.Attr(key).(type) {
		case uint64:
			return float64(v)
		case int64:
			return float64(v)
		case float64:
			return v
		default:
			t.Fatalf("span %s attr %s = %v (%T)", s.Name, key, v, v)
			return 0
		}
	}
	for _, stage := range []string{"phase1", "phase2", "validate"} {
		for _, s := range byName[stage] {
			for _, key := range []string{"sim.events", "sim.cycles", "sim.l1_misses", "sim.mispredicts"} {
				if attrFloat(s, key) <= 0 {
					t.Fatalf("span %s has %s = %v, want > 0", s.Name, key, s.Attr(key))
				}
			}
		}
	}

	// The validation stage reported its protocol parameters.
	for _, s := range byName["validate"] {
		if got := attrFloat(s, "apps"); got != float64(cfg.ValidationApps) {
			t.Fatalf("validate span apps = %v, want %d", got, cfg.ValidationApps)
		}
	}
}

// TestDisabledTracerNoAllocsOnHotLoop is the companion guarantee: with
// tracing disabled, span instrumentation around the simulator hot loop adds
// zero allocations, so the events/sec fast path of PR 3 is untouched.
func TestDisabledTracerNoAllocsOnHotLoop(t *testing.T) {
	m := machine.New(machine.Core2())
	ctx := context.Background()
	var site mem.BranchSite = 0x40
	if n := testing.AllocsPerRun(200, func() {
		sctx, sp := telemetry.StartSpan(ctx, "phase1")
		for i := 0; i < 64; i++ {
			addr := mem.Addr(0x100000 + 64*i)
			m.Read(addr, 8)
			m.Write(addr, 8)
			m.Branch(site, i%3 == 0)
			m.Work(1)
		}
		c := m.Counters()
		sp.SetUint("sim.events", c.Events())
		sp.SetFloat("sim.cycles", c.Cycles)
		sp.End()
		_ = sctx
	}); n != 0 {
		t.Fatalf("disabled tracing allocated %v times per simulated batch", n)
	}
}

// TestTargetResultObservability checks the fields the run report is built
// from: stage wall clocks, label distribution, aggregated counters, and
// validation accuracy land on each TargetResult.
func TestTargetResultObservability(t *testing.T) {
	opt := quickOptions()
	var results []TargetResult
	cfg := PipelineConfig{
		Workers:        4,
		ValidationApps: 2,
		OnTarget:       func(r TargetResult) { results = append(results, r) },
	}
	targets := []adt.ModelTarget{{Kind: adt.KindVector, OrderAware: false}}
	if _, err := TrainArchs(context.Background(), []Options{opt}, quickANN(), targets, cfg); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	r := results[0]
	if r.Stages.Phase1 <= 0 || r.Stages.Phase2 <= 0 || r.Stages.Fit <= 0 || r.Stages.Validate <= 0 {
		t.Fatalf("missing stage times: %+v", r.Stages)
	}
	if r.HW.Events() == 0 || r.HW.Cycles <= 0 {
		t.Fatalf("no aggregated simulator counters: %+v", r.HW)
	}
	total := 0
	for _, n := range r.LabelDist {
		total += n
	}
	if total != r.Labels {
		t.Fatalf("label distribution sums to %d, want %d labels", total, r.Labels)
	}
	if r.ValApps != 2 {
		t.Fatalf("ValApps = %d, want 2", r.ValApps)
	}

	// The report built from these results reflects them faithfully and
	// round-trips as JSON.
	start := time.Now().Add(-r.Elapsed)
	rep := BuildReport(results, start, time.Now())
	if rep.SeedsScanned != uint64(r.SeedsScanned) || rep.LabelsFound != uint64(r.Labels) {
		t.Fatalf("report totals %d/%d do not match result %d/%d",
			rep.SeedsScanned, rep.LabelsFound, r.SeedsScanned, r.Labels)
	}
	if rep.StageSeconds["phase1"] <= 0 || rep.StageSeconds["validate"] <= 0 {
		t.Fatalf("report stage seconds missing: %+v", rep.StageSeconds)
	}
	if len(rep.Targets) != 1 || rep.Targets[0].ValApps != 2 {
		t.Fatalf("report targets: %+v", rep.Targets)
	}
	if len(rep.LabelDistribution) != 1 {
		t.Fatalf("report label distribution: %+v", rep.LabelDistribution)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.SchemaVersion != 1 || back.SeedsScanned != rep.SeedsScanned {
		t.Fatalf("round-tripped report drifted: %+v", back)
	}
}
