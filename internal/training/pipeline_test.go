package training

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/appgen"
	"repro/internal/machine"
)

// quickOptions returns a training budget small enough for unit tests.
func quickOptions() Options {
	opt := DefaultOptions(machine.Core2())
	opt.AppCfg.TotalInterfCalls = 60
	opt.AppCfg.MaxPrepopulate = 100
	opt.AppCfg.MaxIterCount = 200
	opt.PerTargetApps = 6
	opt.MaxSeeds = 200
	opt.Workers = 4
	return opt
}

func quickANN() ann.Config {
	cfg := ann.DefaultConfig()
	cfg.Epochs = 30
	cfg.Hidden = 6
	return cfg
}

// referencePhase1 is the batch-era semantics of Algorithm 1, kept as the
// plain sequential scan: walk seeds in ascending order, record decisive
// winners, stop at PerTargetApps. The streaming implementation must
// reproduce it exactly.
func referencePhase1(target adt.ModelTarget, opt Options) []SeedLabel {
	var labels []SeedLabel
	for i := 0; i < opt.MaxSeeds && len(labels) < opt.PerTargetApps; i++ {
		seed := opt.SeedBase + int64(i)
		app := appgen.Generate(opt.AppCfg, target, seed)
		results := app.RunAll(opt.AppCfg, opt.Arch)
		best, decisive := appgen.Best(results, opt.Margin)
		if decisive {
			labels = append(labels, SeedLabel{Seed: seed, Best: results[best].Kind})
		}
	}
	return labels
}

// TestPhase1MatchesSequentialScan pins the determinism contract: the
// streaming, early-stopping Phase1 returns exactly the labels of a
// sequential exhaustive scan, for several targets and worker counts.
func TestPhase1MatchesSequentialScan(t *testing.T) {
	targets := []adt.ModelTarget{
		{Kind: adt.KindVector, OrderAware: false},
		{Kind: adt.KindSet, OrderAware: true},
		{Kind: adt.KindMap, OrderAware: false},
	}
	for _, tgt := range targets {
		for _, workers := range []int{1, 7} {
			opt := quickOptions()
			opt.Workers = workers
			want := referencePhase1(tgt, opt)
			got, err := Phase1(context.Background(), tgt, opt)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", tgt.Kind, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v workers=%d: %d labels, want %d", tgt.Kind, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v workers=%d: label %d = %+v, want %+v", tgt.Kind, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPhase1StopsDispatchingAtSaturation shows the streaming pipeline's
// early stop: once enough decisive labels exist, remaining seeds are never
// simulated, so far fewer than MaxSeeds apps run.
func TestPhase1StopsDispatchingAtSaturation(t *testing.T) {
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	opt := quickOptions()
	opt.PerTargetApps = 4
	opt.MaxSeeds = 4000
	p := newPool(opt.Workers)
	defer p.close()
	labels, scanned, _, err := phase1(context.Background(), tgt, opt, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != opt.PerTargetApps {
		t.Fatalf("expected saturation at %d labels, got %d", opt.PerTargetApps, len(labels))
	}
	if scanned >= opt.MaxSeeds {
		t.Fatalf("scanned all %d seeds despite early saturation", scanned)
	}
	// The drain window is bounded by in-flight work: workers plus the
	// result channel buffer, far below MaxSeeds.
	if slack := scanned - opt.PerTargetApps; slack > 200 {
		t.Fatalf("scanned %d seeds for %d labels; early stop is not engaging", scanned, len(labels))
	}
	t.Logf("scanned %d of %d seeds for %d labels", scanned, opt.MaxSeeds, len(labels))
}

func TestPhase1Cancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	if _, err := Phase1(ctx, tgt, quickOptions()); err == nil {
		t.Fatal("cancelled Phase1 returned no error")
	}
}

// TestPhase2CountsDropped feeds Phase2 a label whose winner is outside the
// target's candidate space (a corrupt label file in practice) and checks it
// is counted, not silently discarded.
func TestPhase2CountsDropped(t *testing.T) {
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	opt := quickOptions()
	labels := []SeedLabel{
		{Seed: opt.SeedBase, Best: tgt.Kind},        // legal: the original itself
		{Seed: opt.SeedBase + 1, Best: adt.KindMap}, // never a vector candidate
	}
	ds, err := Phase2(context.Background(), tgt, labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dropped != 1 || len(ds.Examples) != 1 {
		t.Fatalf("dropped=%d examples=%d, want 1 and 1", ds.Dropped, len(ds.Examples))
	}
}

func TestPhase2AllDroppedErrors(t *testing.T) {
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	opt := quickOptions()
	labels := []SeedLabel{
		{Seed: opt.SeedBase, Best: adt.KindMap},
		{Seed: opt.SeedBase + 1, Best: adt.KindHashMap},
	}
	if _, err := Phase2(context.Background(), tgt, labels, opt); err == nil {
		t.Fatal("Phase2 produced a dataset from entirely dropped labels")
	}
}

func registryBytes(t *testing.T, set *ModelSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// trainTargets is the target list shared by the resume tests: two kinds,
// both order modes for the first.
func trainTargets() []adt.ModelTarget {
	return []adt.ModelTarget{
		{Kind: adt.KindVector, OrderAware: false},
		{Kind: adt.KindVector, OrderAware: true},
		{Kind: adt.KindSet, OrderAware: false},
	}
}

// TestResumeFromPartialCheckpoint is the deterministic half of the
// kill-and-resume contract: a checkpoint holding only some targets (as an
// interrupted run leaves behind) must resume into a registry byte-identical
// to an uninterrupted run.
func TestResumeFromPartialCheckpoint(t *testing.T) {
	opt := quickOptions()
	annCfg := quickANN()
	targets := trainTargets()

	full, err := TrainArchs(context.Background(), []Options{opt}, annCfg, targets, PipelineConfig{Workers: opt.Workers})
	if err != nil {
		t.Fatal(err)
	}
	want := registryBytes(t, full)

	// "Interrupt": checkpoint a run covering only the first target.
	cp, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainArchs(context.Background(), []Options{opt}, annCfg, targets[:1],
		PipelineConfig{Workers: opt.Workers, Checkpoint: cp}); err != nil {
		t.Fatal(err)
	}

	// Resume over the full target list.
	resumed := 0
	set, err := TrainArchs(context.Background(), []Options{opt}, annCfg, targets, PipelineConfig{
		Workers:    opt.Workers,
		Checkpoint: cp,
		OnTarget: func(r TargetResult) {
			if r.Resumed {
				resumed++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("%d targets resumed from checkpoint, want 1", resumed)
	}
	if got := registryBytes(t, set); !bytes.Equal(got, want) {
		t.Fatal("resumed registry differs from uninterrupted run")
	}
}

// TestResumeMidStage checkpoints only Phase-I labels (a run killed between
// stages) and checks the resumed run skips Phase-I, finishes the remaining
// stages, and still lands on the uninterrupted registry bytes.
func TestResumeMidStage(t *testing.T) {
	opt := quickOptions()
	annCfg := quickANN()
	targets := trainTargets()[:1]
	tgt := targets[0]

	full, err := TrainArchs(context.Background(), []Options{opt}, annCfg, targets, PipelineConfig{Workers: opt.Workers})
	if err != nil {
		t.Fatal(err)
	}
	want := registryBytes(t, full)

	labels, err := Phase1(context.Background(), tgt, opt)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.EnsureMeta(opt, annCfg); err != nil {
		t.Fatal(err)
	}
	if err := cp.SaveLabels(opt.Arch.Name, tgt, labels); err != nil {
		t.Fatal(err)
	}

	var res TargetResult
	set, err := TrainArchs(context.Background(), []Options{opt}, annCfg, targets, PipelineConfig{
		Workers:    opt.Workers,
		Checkpoint: cp,
		OnTarget:   func(r TargetResult) { res = r },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || res.SeedsScanned != 0 {
		t.Fatalf("labels not restored from checkpoint: %+v", res)
	}
	if res.Examples == 0 {
		t.Fatal("resumed run produced no Phase-II examples")
	}
	if got := registryBytes(t, set); !bytes.Equal(got, want) {
		t.Fatal("mid-stage resume produced a different registry")
	}
}

// TestCancelMidRunThenResume cancels TrainArchs from inside the first
// OnTarget callback — the programmatic form of ^C mid-run — then resumes
// with the same checkpointer and requires the final registry to be
// byte-identical to an uninterrupted run.
func TestCancelMidRunThenResume(t *testing.T) {
	opt := quickOptions()
	opt.Workers = 2 // keep several targets genuinely in flight at cancel time
	annCfg := quickANN()
	targets := trainTargets()

	full, err := TrainArchs(context.Background(), []Options{opt}, annCfg, targets, PipelineConfig{Workers: opt.Workers})
	if err != nil {
		t.Fatal(err)
	}
	want := registryBytes(t, full)

	cp, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	set, err := TrainArchs(ctx, []Options{opt}, annCfg, targets, PipelineConfig{
		Workers:    opt.Workers,
		Checkpoint: cp,
		OnTarget:   func(TargetResult) { cancel() },
	})
	if err == nil {
		// Every target beat the cancellation — nothing left to resume, but
		// the registry must still match.
		if got := registryBytes(t, set); !bytes.Equal(got, want) {
			t.Fatal("completed run differs from reference run")
		}
		t.Skip("all targets completed before cancellation propagated")
	}

	resumed := 0
	set, err = TrainArchs(context.Background(), []Options{opt}, annCfg, targets, PipelineConfig{
		Workers:    opt.Workers,
		Checkpoint: cp,
		OnTarget: func(r TargetResult) {
			if r.Resumed {
				resumed++
			}
		},
	})
	if err != nil {
		t.Fatalf("resume after cancellation: %v", err)
	}
	if resumed == 0 {
		t.Fatal("nothing resumed from the interrupted run's checkpoint")
	}
	if got := registryBytes(t, set); !bytes.Equal(got, want) {
		t.Fatal("interrupted-then-resumed registry differs from uninterrupted run")
	}
}

func TestTrainArchsCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := quickOptions()
	if _, err := TrainArchs(ctx, []Options{opt}, quickANN(), trainTargets(), PipelineConfig{Workers: 2}); err == nil {
		t.Fatal("cancelled TrainArchs returned no error")
	}
}

// TestTrainArchsRejectsMetaDrift: resuming with changed options must fail
// up front instead of silently mixing artifacts from two configurations.
func TestTrainArchsRejectsMetaDrift(t *testing.T) {
	opt := quickOptions()
	annCfg := quickANN()
	cp, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	targets := trainTargets()[:1]
	if _, err := TrainArchs(context.Background(), []Options{opt}, annCfg, targets,
		PipelineConfig{Workers: opt.Workers, Checkpoint: cp}); err != nil {
		t.Fatal(err)
	}
	opt.Margin = 0.2
	if _, err := TrainArchs(context.Background(), []Options{opt}, annCfg, targets,
		PipelineConfig{Workers: opt.Workers, Checkpoint: cp}); err == nil {
		t.Fatal("option drift accepted against an existing checkpoint")
	}
}
