package training

import (
	"context"
	"testing"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/appgen"
	"repro/internal/machine"
)

// tinyOptions keeps test runtimes in seconds while still exercising every
// stage of the framework.
func tinyOptions(arch machine.Config) Options {
	opt := DefaultOptions(arch)
	opt.AppCfg.TotalInterfCalls = 250
	opt.AppCfg.MaxPrepopulate = 400
	opt.AppCfg.MaxIterCount = 800
	opt.PerTargetApps = 80
	opt.MaxSeeds = 500
	return opt
}

func tinyANN() ann.Config {
	cfg := ann.DefaultConfig()
	cfg.Epochs = 120
	return cfg
}

func TestPhase1ProducesDecisiveLabels(t *testing.T) {
	opt := tinyOptions(machine.Core2())
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	labels, err := Phase1(context.Background(), tgt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) == 0 {
		t.Fatal("no labels")
	}
	if len(labels) > opt.PerTargetApps {
		t.Fatalf("labels %d exceed cap %d", len(labels), opt.PerTargetApps)
	}
	cands := map[adt.Kind]bool{}
	for _, k := range adt.CandidatesWithOriginal(tgt.Kind, tgt.OrderAware) {
		cands[k] = true
	}
	for _, l := range labels {
		if !cands[l.Best] {
			t.Fatalf("label %v not a legal candidate", l.Best)
		}
	}
	// Labels must be verifiable: re-running the app reproduces the winner.
	app := appgen.Generate(opt.AppCfg, tgt, labels[0].Seed)
	results := app.RunAll(opt.AppCfg, opt.Arch)
	best, _ := appgen.Best(results, opt.Margin)
	if results[best].Kind != labels[0].Best {
		t.Fatalf("replay winner %v != recorded %v", results[best].Kind, labels[0].Best)
	}
}

func TestPhase1Deterministic(t *testing.T) {
	opt := tinyOptions(machine.Core2())
	opt.PerTargetApps = 30
	tgt := adt.ModelTarget{Kind: adt.KindList, OrderAware: true}
	a, err := Phase1(context.Background(), tgt, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Phase1(context.Background(), tgt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("label %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPhase2BuildsLabeledFeatures(t *testing.T) {
	opt := tinyOptions(machine.Core2())
	opt.PerTargetApps = 40
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	labels, err := Phase1(context.Background(), tgt, opt)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Phase2(context.Background(), tgt, labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Examples) != len(labels) {
		t.Fatalf("examples %d != labels %d", len(ds.Examples), len(labels))
	}
	if ds.Candidates[0] != tgt.Kind {
		t.Fatal("original not first candidate")
	}
	for i, e := range ds.Examples {
		if e.Label < 0 || e.Label >= len(ds.Candidates) {
			t.Fatalf("example %d label %d out of range", i, e.Label)
		}
		if ds.Candidates[e.Label] != labels[i].Best {
			t.Fatalf("example %d label %v != seed label %v", i, ds.Candidates[e.Label], labels[i].Best)
		}
		// All Phase-II profiles come from the original container.
		if ds.Profiles[i].Kind != tgt.Kind {
			t.Fatalf("profile %d from %v, want original %v", i, ds.Profiles[i].Kind, tgt.Kind)
		}
	}
}

func TestTrainedModelBeatsChance(t *testing.T) {
	opt := tinyOptions(machine.Core2())
	opt.PerTargetApps = 150
	opt.MaxSeeds = 1200
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	labels, err := Phase1(context.Background(), tgt, opt)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Phase2(context.Background(), tgt, labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainModel(ds, opt.Arch.Name, tinyANN())
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Validate(context.Background(), m, opt, 60, 700001)
	if err != nil {
		t.Fatal(err)
	}
	chance := 1.0 / float64(len(ds.Candidates))
	if acc < chance+0.15 {
		t.Fatalf("validation accuracy %.2f barely above chance %.2f", acc, chance)
	}
}

func TestCandidateIndex(t *testing.T) {
	ds := Dataset{Candidates: []adt.Kind{adt.KindVector, adt.KindList}}
	if ds.CandidateIndex(adt.KindList) != 1 {
		t.Fatal("index wrong")
	}
	if ds.CandidateIndex(adt.KindHashMap) != -1 {
		t.Fatal("missing kind found")
	}
}

func TestModelSetRegistry(t *testing.T) {
	s := NewModelSet()
	m := &Model{Target: adt.ModelTarget{Kind: adt.KindSet}, Arch: "Core2"}
	s.Put(m)
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	if _, ok := s.Get(adt.KindSet, false, "Core2"); !ok {
		t.Fatal("registered model not found")
	}
	if _, ok := s.Get(adt.KindSet, false, "Atom"); ok {
		t.Fatal("wrong-arch lookup succeeded")
	}
	if _, ok := s.Get(adt.KindSet, true, "Core2"); ok {
		t.Fatal("wrong-awareness lookup succeeded")
	}
}

func TestOracleIsFastest(t *testing.T) {
	opt := tinyOptions(machine.Core2())
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	app := appgen.Generate(opt.AppCfg, tgt, 42)
	oracle := Oracle(&app, opt.AppCfg, opt.Arch)
	results := app.RunAll(opt.AppCfg, opt.Arch)
	for _, r := range results {
		if r.Kind == oracle {
			continue
		}
		var oracleCycles float64
		for _, o := range results {
			if o.Kind == oracle {
				oracleCycles = o.Cycles
			}
		}
		if r.Cycles < oracleCycles {
			t.Fatalf("oracle %v (%.0f) slower than %v (%.0f)", oracle, oracleCycles, r.Kind, r.Cycles)
		}
	}
}

func TestTrainModelEmptyDataset(t *testing.T) {
	if _, err := TrainModel(Dataset{Target: adt.ModelTarget{Kind: adt.KindSet}}, "X", tinyANN()); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestTrainAllCoversTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-target training in -short mode")
	}
	opt := tinyOptions(machine.Core2())
	opt.PerTargetApps = 40
	opt.MaxSeeds = 400
	targets := []adt.ModelTarget{
		{Kind: adt.KindVector, OrderAware: false},
		{Kind: adt.KindSet, OrderAware: false},
	}
	set, err := TrainAll(context.Background(), opt, tinyANN(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("models = %d", set.Len())
	}
	for _, tgt := range targets {
		if _, ok := set.Get(tgt.Kind, tgt.OrderAware, "Core2"); !ok {
			t.Fatalf("missing model for %v", tgt)
		}
	}
}

func TestCrossValidate(t *testing.T) {
	opt := tinyOptions(machine.Core2())
	opt.PerTargetApps = 100
	opt.MaxSeeds = 900
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	labels, err := Phase1(context.Background(), tgt, opt)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Phase2(context.Background(), tgt, labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	mean, std, err := CrossValidate(context.Background(), ds, tinyANN(), 4)
	if err != nil {
		t.Fatal(err)
	}
	chance := 1.0 / float64(len(ds.Candidates))
	if mean < chance+0.1 || mean > 1 {
		t.Fatalf("cv mean %.2f implausible (chance %.2f)", mean, chance)
	}
	if std < 0 || std > 0.5 {
		t.Fatalf("cv std %.2f implausible", std)
	}
}

func TestCrossValidateValidation(t *testing.T) {
	ds := Dataset{Candidates: []adt.Kind{adt.KindVector, adt.KindList}}
	if _, _, err := CrossValidate(context.Background(), ds, tinyANN(), 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, _, err := CrossValidate(context.Background(), ds, tinyANN(), 3); err == nil {
		t.Fatal("empty dataset accepted")
	}
}
