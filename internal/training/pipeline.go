// Streaming training pipeline. Phase-I, Phase-II, validation, and model
// fitting all execute as jobs on one shared, persistent worker pool, so
// per-target and per-architecture work interleaves instead of running in
// sequential outer loops. Phase-I streams: the dispatcher stops handing out
// new seeds as soon as the contiguous completed prefix holds
// Options.PerTargetApps decisive labels, while collection stays in strict
// seed order so the output is bit-identical to an exhaustive sequential
// scan. Everything is cancellable via context and, when a Checkpointer is
// configured, resumable from the last completed per-target stage.

package training

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/appgen"
	"repro/internal/machine"
	"repro/internal/profile"
)

// pool is a persistent worker pool. Jobs are plain closures; submit blocks
// until a worker accepts the job, which bounds the amount of in-flight
// work without per-batch barriers.
type pool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

func newPool(workers int) *pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &pool{jobs: make(chan func())}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// submit hands f to a worker, or fails with the context's error if ctx is
// cancelled first. Accepted jobs always run.
func (p *pool) submit(ctx context.Context, f func()) error {
	select {
	case p.jobs <- f:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops the workers after all accepted jobs have finished.
func (p *pool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// phase1 is the streaming core of Algorithm 1 for one target on a shared
// pool. It returns the labels, the number of seeds actually simulated, and
// the context's error if the run was cancelled.
//
// Determinism: seeds are dispatched in ascending order and folded into the
// label list only when they become part of the contiguous completed
// prefix, so the result is exactly "the first PerTargetApps decisive seeds
// in [SeedBase, SeedBase+MaxSeeds), in seed order" — the same set the
// batch-synchronous implementation produced. Early stopping only affects
// how many seeds past the saturation point are simulated.
func phase1(ctx context.Context, target adt.ModelTarget, opt Options, p *pool) ([]SeedLabel, int, error) {
	type outcome struct {
		idx      int
		best     adt.Kind
		decisive bool
		ran      bool
		cycles   float64
	}
	resCh := make(chan outcome, 64)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	defer halt()

	var dispatched atomic.Int64
	dispatchDone := make(chan struct{})
	go func() {
		defer close(dispatchDone)
		for i := 0; i < opt.MaxSeeds; i++ {
			idx := i
			seed := opt.SeedBase + int64(i)
			job := func() {
				o := outcome{idx: idx}
				// A job accepted before saturation/cancellation may start
				// after it; skip the simulation but still report in, so the
				// collector's dispatched/received accounting closes.
				if ctx.Err() == nil {
					select {
					case <-stop:
					default:
						app := appgen.Generate(opt.AppCfg, target, seed)
						results := app.RunAll(opt.AppCfg, opt.Arch)
						best, decisive := appgen.Best(results, opt.Margin)
						o.best = results[best].Kind
						o.decisive = decisive
						o.ran = true
						for _, r := range results {
							o.cycles += r.Cycles
						}
					}
				}
				resCh <- o
			}
			select {
			case p.jobs <- job:
				dispatched.Add(1)
			case <-stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		labels   []SeedLabel
		pending  = map[int]outcome{}
		next     int
		received int64
		scanned  int
		done     = dispatchDone
	)
	for {
		select {
		case o := <-resCh:
			received++
			if o.ran {
				scanned++
				Metrics.SeedsScanned.Inc()
				Metrics.CyclesSimulated.Add(o.cycles)
			}
			pending[o.idx] = o
			// Fold the contiguous completed prefix, in seed order.
			for {
				q, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if q.ran && q.decisive && len(labels) < opt.PerTargetApps {
					labels = append(labels, SeedLabel{Seed: opt.SeedBase + int64(next), Best: q.best})
					Metrics.LabelsFound.Inc()
					if len(labels) == opt.PerTargetApps {
						halt() // saturated: stop dispatching, drain in-flight
					}
				}
				next++
			}
		case <-done:
			done = nil // dispatched count is now final
		}
		if done == nil && received == dispatched.Load() {
			break
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, scanned, err
	}
	return labels, scanned, nil
}

// phase2 is the shared-pool core of Algorithm 2.
func phase2(ctx context.Context, target adt.ModelTarget, labels []SeedLabel, opt Options, p *pool) (Dataset, error) {
	ds := Dataset{
		Target:     target,
		Candidates: adt.CandidatesWithOriginal(target.Kind, target.OrderAware),
	}
	type pair struct {
		prof  profile.Profile
		label int
	}
	n := len(labels)
	results := make([]pair, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		err := p.submit(ctx, func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			lab := labels[i]
			app := appgen.Generate(opt.AppCfg, target, lab.Seed)
			m := machine.New(opt.Arch)
			res := app.Run(opt.AppCfg, target.Kind, m)
			Metrics.CyclesSimulated.Add(res.Cycles)
			results[i] = pair{prof: res.Profile, label: ds.CandidateIndex(lab.Best)}
		})
		if err != nil {
			wg.Done() // the rejected job never ran
			break
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Dataset{}, err
	}
	for _, r := range results {
		if r.label < 0 {
			// Phase-I recorded a winner that is not in this target's
			// candidate space — a corrupt label file or a candidate-set
			// drift between phases. Count it; silence would shrink the
			// dataset invisibly.
			ds.Dropped++
			Metrics.Phase2Dropped.Inc()
			continue
		}
		ds.Examples = append(ds.Examples, ann.Example{X: r.prof.Vector(), Label: r.label})
		ds.Profiles = append(ds.Profiles, r.prof)
	}
	Metrics.Phase2Examples.Add(uint64(len(ds.Examples)))
	if n > 0 && ds.Dropped == n {
		return Dataset{}, fmt.Errorf("training: phase2 for %v dropped all %d examples (winners outside the candidate space)", target.Kind, n)
	}
	return ds, nil
}

// validate is the shared-pool core of the Figure 9 protocol.
func validate(ctx context.Context, m *Model, opt Options, n int, seedBase int64, p *pool) (float64, error) {
	if n <= 0 {
		return 0, nil
	}
	var correct atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		seed := seedBase + int64(i)
		wg.Add(1)
		err := p.submit(ctx, func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			app := appgen.Generate(opt.AppCfg, m.Target, seed)
			oracle := Oracle(&app, opt.AppCfg, opt.Arch)
			mach := machine.New(opt.Arch)
			run := app.Run(opt.AppCfg, m.Target.Kind, mach)
			if m.Predict(&run.Profile) == oracle {
				correct.Add(1)
			}
		})
		if err != nil {
			wg.Done()
			break
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return float64(correct.Load()) / float64(n), nil
}

// PipelineConfig tunes a TrainArchs run.
type PipelineConfig struct {
	// Workers sizes the shared pool; 0 means GOMAXPROCS.
	Workers int
	// Checkpoint, when non-nil, persists each target's Phase-I labels,
	// Phase-II dataset, and trained model as they complete, and resumes
	// finished stages on the next run.
	Checkpoint *Checkpointer
	// OnTarget, when non-nil, is invoked as each target's model completes
	// (including targets restored from a checkpoint). Calls are serialized.
	OnTarget func(TargetResult)
}

// TargetResult reports one completed (target, architecture) unit.
type TargetResult struct {
	Model         *Model
	Arch          string
	SeedsScanned  int     // Phase-I apps actually simulated (0 when resumed)
	Labels        int     // decisive labels recorded
	Examples      int     // Phase-II examples produced
	Dropped       int     // Phase-II examples dropped (winner outside candidates)
	TrainAccuracy float64 // model accuracy on its own training set (0 when fully resumed)
	Resumed       bool    // at least one stage came from a checkpoint
	Elapsed       time.Duration
}

// TrainArchs trains every (target, architecture) pair on one shared worker
// pool, interleaving Phase-I seed simulation, Phase-II instrumentation, and
// ANN fitting across all pairs. The first failure cancels the rest. With a
// cancelled context it returns the context's error; completed per-target
// stages are already checkpointed, so a subsequent run with the same
// Checkpointer resumes where this one stopped.
func TrainArchs(ctx context.Context, opts []Options, annCfg ann.Config, targets []adt.ModelTarget, cfg PipelineConfig) (*ModelSet, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if cfg.Checkpoint != nil {
		for _, opt := range opts {
			if err := cfg.Checkpoint.EnsureMeta(opt, annCfg); err != nil {
				return nil, err
			}
		}
	}
	p := newPool(cfg.Workers)
	defer p.close()

	set := NewModelSet()
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for _, opt := range opts {
		for _, tgt := range targets {
			opt, tgt := opt, tgt
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := trainTarget(ctx, tgt, opt, annCfg, p, cfg.Checkpoint)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
							firstErr = err
						} else {
							firstErr = fmt.Errorf("training %v/%s: %w", tgt.Kind, opt.Arch.Name, err)
						}
						cancel()
					}
					return
				}
				set.Put(res.Model)
				if cfg.OnTarget != nil {
					cfg.OnTarget(res)
				}
			}()
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return set, nil
}

// trainTarget runs (or resumes) the full per-target pipeline: Phase-I
// labels, Phase-II dataset, ANN fit — checkpointing each stage as it lands.
func trainTarget(ctx context.Context, tgt adt.ModelTarget, opt Options, annCfg ann.Config, p *pool, cp *Checkpointer) (TargetResult, error) {
	start := time.Now()
	res := TargetResult{Arch: opt.Arch.Name}

	if cp != nil {
		m, ok, err := cp.LoadModel(opt.Arch.Name, tgt)
		if err != nil {
			return res, err
		}
		if ok {
			Metrics.TargetsResumed.Inc()
			res.Model = m
			res.Resumed = true
			res.Elapsed = time.Since(start)
			return res, nil
		}
	}

	var (
		labels     []SeedLabel
		haveLabels bool
		err        error
	)
	if cp != nil {
		labels, haveLabels, err = cp.LoadLabels(opt.Arch.Name, tgt)
		if err != nil {
			return res, err
		}
		res.Resumed = res.Resumed || haveLabels
	}
	if !haveLabels {
		labels, res.SeedsScanned, err = phase1(ctx, tgt, opt, p)
		if err != nil {
			return res, err
		}
		if cp != nil {
			if err := cp.SaveLabels(opt.Arch.Name, tgt, labels); err != nil {
				return res, err
			}
		}
	}
	res.Labels = len(labels)

	var (
		ds     Dataset
		haveDS bool
	)
	if cp != nil {
		ds, haveDS, err = cp.LoadDataset(opt.Arch.Name, tgt)
		if err != nil {
			return res, err
		}
		res.Resumed = res.Resumed || haveDS
	}
	if !haveDS {
		ds, err = phase2(ctx, tgt, labels, opt, p)
		if err != nil {
			return res, err
		}
		if cp != nil {
			if err := cp.SaveDataset(opt.Arch.Name, ds); err != nil {
				return res, err
			}
		}
	}
	res.Examples = len(ds.Examples)
	res.Dropped = ds.Dropped

	// Fit the ANN as one unit of pool work, so model fitting competes with
	// simulation for the same CPU budget instead of oversubscribing.
	var (
		m    *Model
		terr error
		done = make(chan struct{})
	)
	if err := p.submit(ctx, func() {
		defer close(done)
		if ctx.Err() != nil {
			terr = ctx.Err()
			return
		}
		m, terr = TrainModel(ds, opt.Arch.Name, annCfg)
	}); err != nil {
		return res, err
	}
	<-done
	if terr != nil {
		return res, terr
	}
	Metrics.ModelsTrained.Inc()
	if cp != nil {
		if err := cp.SaveModel(m); err != nil {
			return res, err
		}
	}
	res.Model = m
	res.TrainAccuracy = m.Net.Accuracy(ds.Examples)
	res.Elapsed = time.Since(start)
	return res, nil
}
