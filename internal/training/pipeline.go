// Streaming training pipeline. Phase-I, Phase-II, validation, and model
// fitting all execute as jobs on one shared, persistent worker pool, so
// per-target and per-architecture work interleaves instead of running in
// sequential outer loops. Phase-I streams: the dispatcher stops handing out
// new seeds as soon as the contiguous completed prefix holds
// Options.PerTargetApps decisive labels, while collection stays in strict
// seed order so the output is bit-identical to an exhaustive sequential
// scan. Everything is cancellable via context and, when a Checkpointer is
// configured, resumable from the last completed per-target stage.
//
// The pipeline is instrumented end to end: each (target, architecture) unit
// runs under a span, each stage (Phase-I scan, Phase-II instrumentation,
// ANN fit, validation, checkpoint writes) under a child span carrying the
// aggregated simulator counters, and the package-level Metrics counters
// tick as work completes. With no tracer configured the spans are shared
// no-ops that cost nothing.

package training

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/appgen"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/telemetry"
)

// pool is a persistent worker pool. Jobs are plain closures; submit blocks
// until a worker accepts the job, which bounds the amount of in-flight
// work without per-batch barriers.
type pool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

func newPool(workers int) *pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &pool{jobs: make(chan func())}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// submit hands f to a worker, or fails with the context's error if ctx is
// cancelled first. Accepted jobs always run.
func (p *pool) submit(ctx context.Context, f func()) error {
	select {
	case p.jobs <- f:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops the workers after all accepted jobs have finished.
func (p *pool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// setCounterAttrs attaches the aggregated simulator counters a stage
// consumed to its span, using the typed setters so a disabled tracer costs
// no boxing allocations.
func setCounterAttrs(sp *telemetry.Span, hw machine.Counters) {
	sp.SetUint("sim.events", hw.Events())
	sp.SetUint("sim.l1_misses", hw.L1Misses)
	sp.SetUint("sim.l2_misses", hw.L2Misses)
	sp.SetUint("sim.tlb_misses", hw.TLBMisses)
	sp.SetUint("sim.mispredicts", hw.Mispredicts)
	sp.SetFloat("sim.cycles", hw.Cycles)
}

// countEvents folds one stage's counter aggregate into the pipeline
// metrics (cycles are counted where the work happens, events here).
func countEvents(hw machine.Counters) {
	Metrics.EventsSimulated.Add(hw.Events())
}

// phase1 is the streaming core of Algorithm 1 for one target on a shared
// pool. It returns the labels, the number of seeds actually simulated, the
// aggregated simulator counters, and the context's error if the run was
// cancelled.
//
// Determinism: seeds are dispatched in ascending order and folded into the
// label list only when they become part of the contiguous completed
// prefix, so the result is exactly "the first PerTargetApps decisive seeds
// in [SeedBase, SeedBase+MaxSeeds), in seed order" — the same set the
// batch-synchronous implementation produced. Early stopping only affects
// how many seeds past the saturation point are simulated.
func phase1(ctx context.Context, target adt.ModelTarget, opt Options, p *pool) ([]SeedLabel, int, machine.Counters, error) {
	ctx, span := telemetry.StartSpan(ctx, "phase1")
	defer span.End()
	type outcome struct {
		idx      int
		best     adt.Kind
		decisive bool
		ran      bool
		hw       machine.Counters
	}
	resCh := make(chan outcome, 64)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	defer halt()

	var dispatched atomic.Int64
	dispatchDone := make(chan struct{})
	go func() {
		defer close(dispatchDone)
		for i := 0; i < opt.MaxSeeds; i++ {
			idx := i
			seed := opt.SeedBase + int64(i)
			job := func() {
				o := outcome{idx: idx}
				// A job accepted before saturation/cancellation may start
				// after it; skip the simulation but still report in, so the
				// collector's dispatched/received accounting closes.
				if ctx.Err() == nil {
					select {
					case <-stop:
					default:
						app := appgen.Generate(opt.AppCfg, target, seed)
						results := app.RunAll(opt.AppCfg, opt.Arch)
						best, decisive := appgen.Best(results, opt.Margin)
						o.best = results[best].Kind
						o.decisive = decisive
						o.ran = true
						for _, r := range results {
							o.hw = o.hw.Add(r.Profile.HW)
						}
					}
				}
				resCh <- o
			}
			select {
			case p.jobs <- job:
				dispatched.Add(1)
			case <-stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		labels   []SeedLabel
		hw       machine.Counters
		pending  = map[int]outcome{}
		next     int
		received int64
		scanned  int
		done     = dispatchDone
	)
	for {
		select {
		case o := <-resCh:
			received++
			if o.ran {
				scanned++
				hw = hw.Add(o.hw)
				Metrics.SeedsScanned.Inc()
				Metrics.CyclesSimulated.Add(o.hw.Cycles)
			}
			pending[o.idx] = o
			// Fold the contiguous completed prefix, in seed order.
			for {
				q, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if q.ran && q.decisive && len(labels) < opt.PerTargetApps {
					labels = append(labels, SeedLabel{Seed: opt.SeedBase + int64(next), Best: q.best})
					Metrics.LabelsFound.Inc()
					if len(labels) == opt.PerTargetApps {
						halt() // saturated: stop dispatching, drain in-flight
					}
				}
				next++
			}
		case <-done:
			done = nil // dispatched count is now final
		}
		if done == nil && received == dispatched.Load() {
			break
		}
	}
	countEvents(hw)
	span.SetInt("seeds_scanned", int64(scanned))
	span.SetInt("labels", int64(len(labels)))
	setCounterAttrs(span, hw)
	if err := ctx.Err(); err != nil {
		return nil, scanned, hw, err
	}
	return labels, scanned, hw, nil
}

// phase2 is the shared-pool core of Algorithm 2. Alongside the dataset it
// returns the aggregated simulator counters of the instrumented replays.
func phase2(ctx context.Context, target adt.ModelTarget, labels []SeedLabel, opt Options, p *pool) (Dataset, machine.Counters, error) {
	ctx, span := telemetry.StartSpan(ctx, "phase2")
	defer span.End()
	ds := Dataset{
		Target:     target,
		Candidates: adt.CandidatesWithOriginal(target.Kind, target.OrderAware),
	}
	type pair struct {
		prof  profile.Profile
		label int
	}
	n := len(labels)
	results := make([]pair, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		err := p.submit(ctx, func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			lab := labels[i]
			app := appgen.Generate(opt.AppCfg, target, lab.Seed)
			m := machine.New(opt.Arch)
			res := app.Run(opt.AppCfg, target.Kind, m)
			Metrics.CyclesSimulated.Add(res.Cycles)
			results[i] = pair{prof: res.Profile, label: ds.CandidateIndex(lab.Best)}
		})
		if err != nil {
			wg.Done() // the rejected job never ran
			break
		}
	}
	wg.Wait()
	var hw machine.Counters
	for i := range results {
		hw = hw.Add(results[i].prof.HW)
	}
	countEvents(hw)
	span.SetInt("labels", int64(n))
	setCounterAttrs(span, hw)
	if err := ctx.Err(); err != nil {
		return Dataset{}, hw, err
	}
	for _, r := range results {
		if r.label < 0 {
			// Phase-I recorded a winner that is not in this target's
			// candidate space — a corrupt label file or a candidate-set
			// drift between phases. Count it; silence would shrink the
			// dataset invisibly.
			ds.Dropped++
			Metrics.Phase2Dropped.Inc()
			continue
		}
		ds.Examples = append(ds.Examples, ann.Example{X: r.prof.Vector(), Label: r.label})
		ds.Profiles = append(ds.Profiles, r.prof)
	}
	span.SetInt("examples", int64(len(ds.Examples)))
	span.SetInt("dropped", int64(ds.Dropped))
	Metrics.Phase2Examples.Add(uint64(len(ds.Examples)))
	if n > 0 && ds.Dropped == n {
		return Dataset{}, hw, fmt.Errorf("training: phase2 for %v dropped all %d examples (winners outside the candidate space)", target.Kind, n)
	}
	return ds, hw, nil
}

// validate is the shared-pool core of the Figure 9 protocol: n fresh
// applications, oracle-labelled, scored against the model. It returns the
// accuracy and the aggregated simulator counters of the validation runs.
func validate(ctx context.Context, m *Model, opt Options, n int, seedBase int64, p *pool) (float64, machine.Counters, error) {
	var hw machine.Counters
	if n <= 0 {
		return 0, hw, nil
	}
	ctx, span := telemetry.StartSpan(ctx, "validate")
	defer span.End()
	var correct atomic.Int64
	hws := make([]machine.Counters, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		seed := seedBase + int64(i)
		wg.Add(1)
		err := p.submit(ctx, func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			app := appgen.Generate(opt.AppCfg, m.Target, seed)
			// Inline Oracle so the candidate sweep's counters are kept.
			results := app.RunAll(opt.AppCfg, opt.Arch)
			best, _ := appgen.Best(results, 0)
			oracle := results[best].Kind
			for _, r := range results {
				hws[i] = hws[i].Add(r.Profile.HW)
			}
			mach := machine.New(opt.Arch)
			run := app.Run(opt.AppCfg, m.Target.Kind, mach)
			hws[i] = hws[i].Add(run.Profile.HW)
			if m.Predict(&run.Profile) == oracle {
				correct.Add(1)
			}
		})
		if err != nil {
			wg.Done()
			break
		}
	}
	wg.Wait()
	for i := range hws {
		hw = hw.Add(hws[i])
	}
	countEvents(hw)
	Metrics.CyclesSimulated.Add(hw.Cycles)
	Metrics.ValidationApps.Add(uint64(n))
	acc := float64(correct.Load()) / float64(n)
	span.SetInt("apps", int64(n))
	span.SetFloat("accuracy", acc)
	setCounterAttrs(span, hw)
	if err := ctx.Err(); err != nil {
		return 0, hw, err
	}
	return acc, hw, nil
}

// PipelineConfig tunes a TrainArchs run.
type PipelineConfig struct {
	// Workers sizes the shared pool; 0 means GOMAXPROCS.
	Workers int
	// Checkpoint, when non-nil, persists each target's Phase-I labels,
	// Phase-II dataset, and trained model as they complete, and resumes
	// finished stages on the next run.
	Checkpoint *Checkpointer
	// OnTarget, when non-nil, is invoked as each target's model completes
	// (including targets restored from a checkpoint). Calls are serialized.
	OnTarget func(TargetResult)
	// Tracer, when enabled, records one span per (target, architecture)
	// unit plus child spans for every stage, each carrying the simulator
	// counters it consumed. Nil disables tracing at zero cost.
	Tracer *telemetry.Tracer
	// ValidationApps, when positive, adds a validation stage after each
	// model is fitted: that many fresh oracle-labelled applications (seeds
	// disjoint from the Phase-I range) are scored against the model and the
	// accuracy lands in TargetResult.ValAccuracy. Targets fully restored
	// from a checkpoint skip validation.
	ValidationApps int
}

// StageTimes is the per-stage wall-clock breakdown of one target unit.
// Stages that did not run (resumed, or validation disabled) are zero.
type StageTimes struct {
	Phase1     time.Duration `json:"phase1"`
	Phase2     time.Duration `json:"phase2"`
	Fit        time.Duration `json:"fit"`
	Validate   time.Duration `json:"validate"`
	Checkpoint time.Duration `json:"checkpoint"`
}

// TargetResult reports one completed (target, architecture) unit.
type TargetResult struct {
	Model         *Model
	Arch          string
	SeedsScanned  int     // Phase-I apps actually simulated (0 when resumed)
	Labels        int     // decisive labels recorded
	Examples      int     // Phase-II examples produced
	Dropped       int     // Phase-II examples dropped (winner outside candidates)
	TrainAccuracy float64 // model accuracy on its own training set (0 when fully resumed)
	ValApps       int     // validation applications scored (0 when disabled or resumed)
	ValAccuracy   float64 // oracle-validation accuracy (meaningful when ValApps > 0)
	Resumed       bool    // at least one stage came from a checkpoint
	Elapsed       time.Duration
	Stages        StageTimes       // wall clock by stage
	HW            machine.Counters // aggregated simulator counters of fresh work
	LabelDist     map[string]int   // decisive label distribution by winning kind
}

// TrainArchs trains every (target, architecture) pair on one shared worker
// pool, interleaving Phase-I seed simulation, Phase-II instrumentation, and
// ANN fitting across all pairs. The first failure cancels the rest. With a
// cancelled context it returns the context's error; completed per-target
// stages are already checkpointed, so a subsequent run with the same
// Checkpointer resumes where this one stopped.
func TrainArchs(ctx context.Context, opts []Options, annCfg ann.Config, targets []adt.ModelTarget, cfg PipelineConfig) (*ModelSet, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if cfg.Tracer.Enabled() && telemetry.SpanFromContext(ctx) == nil {
		var root *telemetry.Span
		ctx, root = cfg.Tracer.Start(ctx, "train")
		root.SetInt("archs", int64(len(opts)))
		root.SetInt("targets", int64(len(targets)))
		defer root.End()
	}
	if cfg.Checkpoint != nil {
		for _, opt := range opts {
			if err := cfg.Checkpoint.EnsureMeta(opt, annCfg); err != nil {
				return nil, err
			}
		}
	}
	p := newPool(cfg.Workers)
	defer p.close()

	set := NewModelSet()
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for _, opt := range opts {
		for _, tgt := range targets {
			opt, tgt := opt, tgt
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := trainTarget(ctx, tgt, opt, annCfg, p, cfg)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
							firstErr = err
						} else {
							firstErr = fmt.Errorf("training %v/%s: %w", tgt.Kind, opt.Arch.Name, err)
						}
						cancel()
					}
					return
				}
				set.Put(res.Model)
				if cfg.OnTarget != nil {
					cfg.OnTarget(res)
				}
			}()
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return set, nil
}

// trainTarget runs (or resumes) the full per-target pipeline: Phase-I
// labels, Phase-II dataset, ANN fit, optional validation — checkpointing
// each stage as it lands and timing each stage for the run report.
func trainTarget(ctx context.Context, tgt adt.ModelTarget, opt Options, annCfg ann.Config, p *pool, cfg PipelineConfig) (TargetResult, error) {
	start := time.Now()
	cp := cfg.Checkpoint
	res := TargetResult{Arch: opt.Arch.Name}

	ctx, span := telemetry.StartSpan(ctx, "target")
	defer span.End()
	span.SetStr("target", fmt.Sprint(tgt.Kind))
	span.SetAttr("order_aware", tgt.OrderAware)
	span.SetStr("arch", opt.Arch.Name)

	// checkpointed wraps one checkpoint write in a span and folds its wall
	// clock into the stage breakdown.
	checkpointed := func(stage string, write func() error) error {
		if cp == nil {
			return nil
		}
		t0 := time.Now()
		_, sp := telemetry.StartSpan(ctx, "checkpoint")
		sp.SetStr("stage", stage)
		err := write()
		sp.End()
		res.Stages.Checkpoint += time.Since(t0)
		return err
	}

	if cp != nil {
		m, ok, err := cp.LoadModel(opt.Arch.Name, tgt)
		if err != nil {
			return res, err
		}
		if ok {
			Metrics.TargetsResumed.Inc()
			span.SetAttr("resumed", true)
			res.Model = m
			res.Resumed = true
			res.Elapsed = time.Since(start)
			return res, nil
		}
	}

	var (
		labels     []SeedLabel
		haveLabels bool
		err        error
	)
	if cp != nil {
		labels, haveLabels, err = cp.LoadLabels(opt.Arch.Name, tgt)
		if err != nil {
			return res, err
		}
		res.Resumed = res.Resumed || haveLabels
	}
	if !haveLabels {
		t0 := time.Now()
		var hw machine.Counters
		labels, res.SeedsScanned, hw, err = phase1(ctx, tgt, opt, p)
		res.Stages.Phase1 = time.Since(t0)
		res.HW = res.HW.Add(hw)
		if err != nil {
			return res, err
		}
		if err := checkpointed("labels", func() error {
			return cp.SaveLabels(opt.Arch.Name, tgt, labels)
		}); err != nil {
			return res, err
		}
	}
	res.Labels = len(labels)
	res.LabelDist = make(map[string]int, 4)
	for _, l := range labels {
		res.LabelDist[fmt.Sprint(l.Best)]++
	}

	var (
		ds     Dataset
		haveDS bool
	)
	if cp != nil {
		ds, haveDS, err = cp.LoadDataset(opt.Arch.Name, tgt)
		if err != nil {
			return res, err
		}
		res.Resumed = res.Resumed || haveDS
	}
	if !haveDS {
		t0 := time.Now()
		var hw machine.Counters
		ds, hw, err = phase2(ctx, tgt, labels, opt, p)
		res.Stages.Phase2 = time.Since(t0)
		res.HW = res.HW.Add(hw)
		if err != nil {
			return res, err
		}
		if err := checkpointed("dataset", func() error {
			return cp.SaveDataset(opt.Arch.Name, ds)
		}); err != nil {
			return res, err
		}
	}
	res.Examples = len(ds.Examples)
	res.Dropped = ds.Dropped

	// Fit the ANN as one unit of pool work, so model fitting competes with
	// simulation for the same CPU budget instead of oversubscribing.
	var (
		m       *Model
		terr    error
		done    = make(chan struct{})
		fitTime = time.Now()
	)
	_, fitSpan := telemetry.StartSpan(ctx, "fit")
	fitSpan.SetInt("examples", int64(len(ds.Examples)))
	if err := p.submit(ctx, func() {
		defer close(done)
		if ctx.Err() != nil {
			terr = ctx.Err()
			return
		}
		m, terr = TrainModel(ds, opt.Arch.Name, annCfg)
	}); err != nil {
		fitSpan.End()
		return res, err
	}
	<-done
	fitSpan.End()
	res.Stages.Fit = time.Since(fitTime)
	if terr != nil {
		return res, terr
	}
	Metrics.ModelsTrained.Inc()
	if err := checkpointed("model", func() error {
		return cp.SaveModel(m)
	}); err != nil {
		return res, err
	}
	res.Model = m
	res.TrainAccuracy = m.Net.Accuracy(ds.Examples)

	if cfg.ValidationApps > 0 {
		// Validation seeds live past the Phase-I scan range, so they are
		// disjoint from training for any MaxSeeds.
		t0 := time.Now()
		acc, hw, err := validate(ctx, m, opt, cfg.ValidationApps, opt.SeedBase+int64(opt.MaxSeeds), p)
		res.Stages.Validate = time.Since(t0)
		res.HW = res.HW.Add(hw)
		if err != nil {
			return res, err
		}
		res.ValApps = cfg.ValidationApps
		res.ValAccuracy = acc
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
