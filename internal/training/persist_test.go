package training

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/machine"
	"repro/internal/profile"
)

// syntheticModel fits a tiny but fully valid model for (kind, arch) without
// running any simulation: the examples are random feature vectors.
func syntheticModel(t *testing.T, kind adt.Kind, orderAware bool, arch string) *Model {
	t.Helper()
	tgt := adt.ModelTarget{Kind: kind, OrderAware: orderAware}
	ds := Dataset{Target: tgt, Candidates: adt.CandidatesWithOriginal(kind, orderAware)}
	rng := rand.New(rand.NewSource(int64(kind)*31 + 7))
	for i := 0; i < 12; i++ {
		x := make([]float64, profile.NumFeatures)
		for j := range x {
			x[j] = rng.Float64()
		}
		ds.Examples = append(ds.Examples, ann.Example{X: x, Label: i % len(ds.Candidates)})
	}
	cfg := ann.DefaultConfig()
	cfg.Epochs = 5
	cfg.Hidden = 4
	m, err := TrainModel(ds, arch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func saveBytes(t *testing.T, set *ModelSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSaveEmptySetIsEmptyArray(t *testing.T) {
	got := string(saveBytes(t, NewModelSet()))
	if strings.TrimSpace(got) != "[]" {
		t.Fatalf("empty set serialized as %q, want []", got)
	}
}

// TestSaveIsDeterministic registers the same models in opposite orders and
// requires byte-identical artifacts, sorted by (Kind, OrderAware, Arch).
func TestSaveIsDeterministic(t *testing.T) {
	models := []*Model{
		syntheticModel(t, adt.KindSet, false, "Core2"),
		syntheticModel(t, adt.KindVector, true, "Atom"),
		syntheticModel(t, adt.KindVector, false, "Core2"),
		syntheticModel(t, adt.KindVector, true, "Core2"),
	}
	a, b := NewModelSet(), NewModelSet()
	for _, m := range models {
		a.Put(m)
	}
	for i := len(models) - 1; i >= 0; i-- {
		b.Put(models[i])
	}
	ba, bb := saveBytes(t, a), saveBytes(t, b)
	if !bytes.Equal(ba, bb) {
		t.Fatal("registration order changed the artifact bytes")
	}
	var entries []struct {
		Kind       string `json:"kind"`
		OrderAware bool   `json:"order_aware"`
		Arch       string `json:"arch"`
	}
	if err := json.Unmarshal(ba, &entries); err != nil {
		t.Fatal(err)
	}
	want := []string{"vector/false/Core2", "vector/true/Atom", "vector/true/Core2", "set/false/Core2"}
	if len(entries) != len(want) {
		t.Fatalf("%d entries, want %d", len(entries), len(want))
	}
	for i, e := range entries {
		got := e.Kind + "/" + map[bool]string{false: "false", true: "true"}[e.OrderAware] + "/" + e.Arch
		if got != want[i] {
			t.Fatalf("entry %d is %s, want %s", i, got, want[i])
		}
	}
}

func TestLoadModelSetRoundTrip(t *testing.T) {
	set := NewModelSet()
	set.Put(syntheticModel(t, adt.KindVector, false, "Core2"))
	set.Put(syntheticModel(t, adt.KindList, true, "Atom"))
	data := saveBytes(t, set)
	loaded, err := LoadModelSet(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d models, want 2", loaded.Len())
	}
	// A loaded registry must re-save byte-identically: resume and artifact
	// comparison both depend on it.
	if !bytes.Equal(saveBytes(t, loaded), data) {
		t.Fatal("save -> load -> save is not byte-identical")
	}
}

// TestLoadModelSetRejectsCorrupt feeds the registry loader the corruptions
// that used to crash brainy-serve per request instead of at startup.
func TestLoadModelSetRejectsCorrupt(t *testing.T) {
	set := NewModelSet()
	set.Put(syntheticModel(t, adt.KindVector, false, "Core2"))
	valid := saveBytes(t, set)

	mutate := func(f func([]map[string]any) []map[string]any) []byte {
		var entries []map[string]any
		if err := json.Unmarshal(valid, &entries); err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(f(entries))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"truncated stream", valid[:len(valid)/2]},
		{"not an array", []byte(`{"kind":"vector"}`)},
		{"unknown kind", mutate(func(e []map[string]any) []map[string]any {
			e[0]["kind"] = "bogus"
			return e
		})},
		{"unknown candidate", mutate(func(e []map[string]any) []map[string]any {
			e[0]["candidates"].([]any)[1] = "bogus"
			return e
		})},
		{"empty candidates", mutate(func(e []map[string]any) []map[string]any {
			e[0]["candidates"] = []any{}
			return e
		})},
		{"candidate/output mismatch", mutate(func(e []map[string]any) []map[string]any {
			c := e[0]["candidates"].([]any)
			e[0]["candidates"] = c[:len(c)-1]
			return e
		})},
		{"original not first", mutate(func(e []map[string]any) []map[string]any {
			c := e[0]["candidates"].([]any)
			c[0], c[1] = c[1], c[0]
			return e
		})},
		{"corrupt embedded network", mutate(func(e []map[string]any) []map[string]any {
			e[0]["network"] = map[string]any{"In": 1, "Hidden": 1, "Out": 1}
			return e
		})},
		{"duplicate entry", mutate(func(e []map[string]any) []map[string]any {
			return append(e, e[0])
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadModelSet(bytes.NewReader(tc.data)); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
}

// TestLoadModelSetRejectsFeatureMismatch builds an otherwise-valid entry
// whose network consumes the wrong number of features.
func TestLoadModelSetRejectsFeatureMismatch(t *testing.T) {
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	cands := adt.CandidatesWithOriginal(tgt.Kind, tgt.OrderAware)
	cfg := ann.DefaultConfig()
	cfg.Epochs = 5
	cfg.Hidden = 4
	net := ann.New(3, len(cands), cfg) // 3 features, not profile.NumFeatures
	exs := make([]ann.Example, 8)
	rng := rand.New(rand.NewSource(5))
	for i := range exs {
		exs[i] = ann.Example{X: []float64{rng.Float64(), rng.Float64(), rng.Float64()}, Label: i % len(cands)}
	}
	if _, err := net.Train(exs); err != nil {
		t.Fatal(err)
	}
	set := NewModelSet()
	set.Put(&Model{Target: tgt, Arch: "Core2", Candidates: cands, Net: net})
	if _, err := LoadModelSet(bytes.NewReader(saveBytes(t, set))); err == nil {
		t.Fatal("feature-count mismatch accepted")
	}
}

func TestCheckpointLabelsRoundTrip(t *testing.T) {
	cp, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tgt := adt.ModelTarget{Kind: adt.KindList, OrderAware: true}
	if _, ok, err := cp.LoadLabels("Core2", tgt); ok || err != nil {
		t.Fatalf("missing labels reported ok=%v err=%v", ok, err)
	}
	labels := []SeedLabel{{Seed: 3, Best: adt.KindDeque}, {Seed: 9, Best: adt.KindList}}
	if err := cp.SaveLabels("Core2", tgt, labels); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cp.LoadLabels("Core2", tgt)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(got) != len(labels) {
		t.Fatalf("got %d labels, want %d", len(got), len(labels))
	}
	for i := range got {
		if got[i] != labels[i] {
			t.Fatalf("label %d: %+v != %+v", i, got[i], labels[i])
		}
	}
	// The same checkpointer keeps architectures separate.
	if _, ok, _ := cp.LoadLabels("Atom", tgt); ok {
		t.Fatal("labels leaked across architectures")
	}
}

func TestCheckpointDatasetRoundTrip(t *testing.T) {
	cp, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	ds := Dataset{Target: tgt, Candidates: adt.CandidatesWithOriginal(tgt.Kind, tgt.OrderAware), Dropped: 2}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5; i++ {
		x := make([]float64, profile.NumFeatures)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		ds.Examples = append(ds.Examples, ann.Example{X: x, Label: i % len(ds.Candidates)})
		ds.Profiles = append(ds.Profiles, profile.Profile{Kind: tgt.Kind, Cycles: float64(i) * 1.5})
	}
	if err := cp.SaveDataset("Core2", ds); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cp.LoadDataset("Core2", tgt)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got.Dropped != ds.Dropped || len(got.Examples) != len(ds.Examples) || len(got.Profiles) != len(ds.Profiles) {
		t.Fatalf("dataset mismatch: %+v", got)
	}
	for i := range got.Examples {
		if got.Examples[i].Label != ds.Examples[i].Label {
			t.Fatalf("example %d label mismatch", i)
		}
		for j := range got.Examples[i].X {
			if got.Examples[i].X[j] != ds.Examples[i].X[j] {
				t.Fatalf("example %d feature %d did not round-trip exactly", i, j)
			}
		}
	}
}

func TestCheckpointModelRoundTrip(t *testing.T) {
	cp, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := syntheticModel(t, adt.KindSet, false, "Core2")
	if _, ok, err := cp.LoadModel("Core2", m.Target); ok || err != nil {
		t.Fatalf("missing model reported ok=%v err=%v", ok, err)
	}
	if err := cp.SaveModel(m); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cp.LoadModel("Core2", m.Target)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	// The restored model must serialize into the registry byte-identically.
	a, b := NewModelSet(), NewModelSet()
	a.Put(m)
	b.Put(got)
	if !bytes.Equal(saveBytes(t, a), saveBytes(t, b)) {
		t.Fatal("checkpointed model does not re-serialize identically")
	}
}

func TestEnsureMetaRejectsOptionDrift(t *testing.T) {
	cp, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(machine.Core2())
	annCfg := ann.DefaultConfig()
	if err := cp.EnsureMeta(opt, annCfg); err != nil {
		t.Fatal(err)
	}
	// Same options, different worker count: still compatible.
	same := opt
	same.Workers = 12
	if err := cp.EnsureMeta(same, annCfg); err != nil {
		t.Fatalf("worker count invalidated the checkpoint: %v", err)
	}
	drifted := opt
	drifted.PerTargetApps++
	if err := cp.EnsureMeta(drifted, annCfg); err == nil {
		t.Fatal("changed training options accepted against existing checkpoint")
	}
}
