package training

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/ann"
	"repro/internal/profile"
)

// CrossValidate runs k-fold cross-validation of the ANN on a Phase-II
// dataset, returning the mean and standard deviation of the fold
// accuracies. It answers the over-fitting question of Section 4.1 without
// spending any extra simulation time: the folds reuse the dataset's
// existing labelled examples. Folds train concurrently on a worker pool;
// each fold's network is seeded identically, so the result is
// deterministic.
func CrossValidate(ctx context.Context, ds Dataset, cfg ann.Config, k int) (mean, std float64, err error) {
	if k < 2 {
		return 0, 0, fmt.Errorf("training: cross-validation needs k >= 2, got %d", k)
	}
	n := len(ds.Examples)
	if n < k {
		return 0, 0, fmt.Errorf("training: %d examples cannot fill %d folds", n, k)
	}
	p := newPool(k)
	defer p.close()
	accs := make([]float64, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for fold := 0; fold < k; fold++ {
		fold := fold
		wg.Add(1)
		if serr := p.submit(ctx, func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			var train, test []ann.Example
			for i, e := range ds.Examples {
				if i%k == fold {
					test = append(test, e)
				} else {
					train = append(train, e)
				}
			}
			net := ann.New(profile.NumFeatures, len(ds.Candidates), cfg)
			if _, terr := net.Train(train); terr != nil {
				errs[fold] = fmt.Errorf("training: fold %d: %w", fold, terr)
				return
			}
			accs[fold] = net.Accuracy(test)
		}); serr != nil {
			wg.Done()
			break
		}
	}
	wg.Wait()
	if cerr := ctx.Err(); cerr != nil {
		return 0, 0, cerr
	}
	for _, e := range errs {
		if e != nil {
			return 0, 0, e
		}
	}
	for _, a := range accs {
		mean += a
	}
	mean /= float64(k)
	for _, a := range accs {
		std += (a - mean) * (a - mean)
	}
	std = math.Sqrt(std / float64(k))
	return mean, std, nil
}
