package training

import (
	"fmt"
	"math"

	"repro/internal/ann"
	"repro/internal/profile"
)

// CrossValidate runs k-fold cross-validation of the ANN on a Phase-II
// dataset, returning the mean and standard deviation of the fold
// accuracies. It answers the over-fitting question of Section 4.1 without
// spending any extra simulation time: the folds reuse the dataset's
// existing labelled examples.
func CrossValidate(ds Dataset, cfg ann.Config, k int) (mean, std float64, err error) {
	if k < 2 {
		return 0, 0, fmt.Errorf("training: cross-validation needs k >= 2, got %d", k)
	}
	n := len(ds.Examples)
	if n < k {
		return 0, 0, fmt.Errorf("training: %d examples cannot fill %d folds", n, k)
	}
	accs := make([]float64, 0, k)
	for fold := 0; fold < k; fold++ {
		var train, test []ann.Example
		for i, e := range ds.Examples {
			if i%k == fold {
				test = append(test, e)
			} else {
				train = append(train, e)
			}
		}
		net := ann.New(profile.NumFeatures, len(ds.Candidates), cfg)
		if _, err := net.Train(train); err != nil {
			return 0, 0, fmt.Errorf("training: fold %d: %w", fold, err)
		}
		accs = append(accs, net.Accuracy(test))
	}
	for _, a := range accs {
		mean += a
	}
	mean /= float64(k)
	for _, a := range accs {
		std += (a - mean) * (a - mean)
	}
	std = math.Sqrt(std / float64(k))
	return mean, std, nil
}
