package training

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/appgen"
	"repro/internal/machine"
)

// TestFlatLabelsReachableMissHeavy pins Phase-I reachability of the flat
// backends: under miss-heavy appgen regimes on Core2, at least one seed
// application must label flat_btree_set for the order-aware set target and
// at least one must label flat_hash_set for the order-oblivious one. If
// either stops being the decisive winner anywhere in these corpora, the
// trained models can never learn to suggest it and the drift rules point at
// a kind the selector contradicts.
//
// The two regimes stress what each layout is for. The B+-tree case uses
// large elements, where the pointer-based nodes drag whole payloads through
// the cache on every visited node while the SoA tree searches packed keys.
// The hash case uses a high interface-call budget so find traffic outweighs
// prepopulation: the open-addressed table pays for its rehash copies during
// the insert phase and earns them back threefold on every probe once the
// working set spills the L1.
func TestFlatLabelsReachableMissHeavy(t *testing.T) {
	if testing.Short() {
		t.Skip("miss-heavy corpus sweep is slow")
	}
	arch := machine.Core2()
	cases := []struct {
		name string
		cfg  appgen.Config
		tgt  adt.ModelTarget
		want adt.Kind
	}{
		{
			name: "payload-heavy ordered",
			// Working sets up to 8192 x 256-byte elements (~2 MB plus
			// per-node overheads) spill Core2's L1 on every probe; the cap
			// stays moderate because the corpus also instantiates the
			// O(n)-insert candidates (sorted_vec), whose prepopulation cost
			// scales quadratically.
			cfg: appgen.Config{
				TotalInterfCalls: 60,
				DataElemSizes:    []uint64{256},
				MaxInsertVal:     1 << 20,
				MaxRemoveVal:     1 << 20,
				MaxSearchVal:     1 << 20,
				MaxIterCount:     64,
				MaxPrepopulate:   8192,
			},
			tgt:  adt.ModelTarget{Kind: adt.KindSet, OrderAware: true},
			want: adt.KindFlatBTreeSet,
		},
		{
			name: "probe-heavy oblivious",
			// Small keys, thousands of lookups against a prepopulated
			// working set that exceeds the L1: the find-specialist seeds in
			// this corpus are where point-probe cost dominates everything.
			cfg: appgen.Config{
				TotalInterfCalls: 6000,
				DataElemSizes:    []uint64{8},
				MaxInsertVal:     1 << 20,
				MaxRemoveVal:     1 << 20,
				MaxSearchVal:     1 << 20,
				MaxIterCount:     64,
				MaxPrepopulate:   8192,
			},
			tgt:  adt.ModelTarget{Kind: adt.KindSet, OrderAware: false},
			want: adt.KindFlatHashSet,
		},
	}
	const maxSeeds = 120
	for _, tc := range cases {
		found := int64(-1)
		for seed := int64(1); seed <= maxSeeds && found < 0; seed++ {
			app := appgen.Generate(tc.cfg, tc.tgt, seed)
			results := app.RunAll(tc.cfg, arch)
			best, decisive := appgen.Best(results, 0.05)
			if decisive && results[best].Kind == tc.want {
				found = seed
			}
		}
		if found < 0 {
			t.Errorf("%s: no seed in [1,%d] labels %v", tc.name, maxSeeds, tc.want)
		} else {
			t.Logf("%s: seed %d labels %v", tc.name, found, tc.want)
		}
	}
}
