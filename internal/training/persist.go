package training

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/profile"
)

// serializedModel is the on-disk form of one model.
type serializedModel struct {
	Kind       string          `json:"kind"`
	OrderAware bool            `json:"order_aware"`
	Arch       string          `json:"arch"`
	Candidates []string        `json:"candidates"`
	Network    json.RawMessage `json:"network"`
}

// encodeModel flattens a model into its on-disk form.
func encodeModel(m *Model) (serializedModel, error) {
	var net bytes.Buffer
	if err := m.Net.Save(&net); err != nil {
		return serializedModel{}, fmt.Errorf("training: serializing %v/%s: %w", m.Target.Kind, m.Arch, err)
	}
	cands := make([]string, len(m.Candidates))
	for i, c := range m.Candidates {
		cands[i] = c.String()
	}
	return serializedModel{
		Kind:       m.Target.Kind.String(),
		OrderAware: m.Target.OrderAware,
		Arch:       m.Arch,
		Candidates: cands,
		Network:    json.RawMessage(bytes.TrimSpace(net.Bytes())),
	}, nil
}

// decodeModel validates and reconstructs a model from its on-disk form. It
// is deliberately strict: a registry entry whose candidate list does not
// match the network's output layer, or whose network does not consume the
// library's feature vector, would not fail until the first Predict — and
// then as an index panic inside the ANN, per request, in whatever process
// loaded it.
func decodeModel(sm serializedModel) (*Model, error) {
	kind, err := adt.ParseKind(sm.Kind)
	if err != nil {
		return nil, err
	}
	if len(sm.Candidates) == 0 {
		return nil, errors.New("empty candidate list")
	}
	cands := make([]adt.Kind, len(sm.Candidates))
	for j, c := range sm.Candidates {
		k, err := adt.ParseKind(c)
		if err != nil {
			return nil, fmt.Errorf("candidate %d: %w", j, err)
		}
		cands[j] = k
	}
	if cands[0] != kind {
		return nil, fmt.Errorf("first candidate %v is not the original container %v", cands[0], kind)
	}
	net, err := ann.Load(bytes.NewReader(sm.Network))
	if err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	if net.Out != len(cands) {
		return nil, fmt.Errorf("network has %d outputs but %d candidates", net.Out, len(cands))
	}
	if net.In != profile.NumFeatures {
		return nil, fmt.Errorf("network consumes %d features, library profiles have %d", net.In, profile.NumFeatures)
	}
	return &Model{
		Target:     adt.ModelTarget{Kind: kind, OrderAware: sm.OrderAware},
		Arch:       sm.Arch,
		Candidates: cands,
		Net:        net,
	}, nil
}

// Save writes every model in the set as a JSON array, the "trained model
// shipped with the library" artifact of the paper's install-time vision.
// Models are emitted sorted by (Kind, OrderAware, Arch) and an empty set
// serializes as [], so two identical training runs produce byte-identical,
// diffable artifacts.
func (s *ModelSet) Save(w io.Writer) error {
	keys := make([]Key, 0, len(s.models))
	for k := range s.models {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.OrderAware != b.OrderAware {
			return !a.OrderAware // order-oblivious first
		}
		return a.Arch < b.Arch
	})
	out := make([]serializedModel, 0, len(s.models))
	for _, k := range keys {
		sm, err := encodeModel(s.models[k])
		if err != nil {
			return err
		}
		out = append(out, sm)
	}
	return json.NewEncoder(w).Encode(out)
}

// Fingerprint is a short stable identity of the registry's exact contents:
// a SHA-256 over the canonical Save encoding, truncated to 12 hex digits.
// Because Save is deterministic (models sorted, empty set as []), two
// registries fingerprint equal exactly when they would serialize
// byte-identically — the deploy-correlation label behind
// brainy_build_info and every decision provenance record.
func (s *ModelSet) Fingerprint() string {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:6])
}

// LoadModelSet reads a model registry written by Save. Every entry is
// fully validated — kind names, candidate/output agreement, feature count,
// network matrix shapes — so a truncated or hand-edited registry fails
// here, at load time, rather than panicking at the first prediction.
func LoadModelSet(r io.Reader) (*ModelSet, error) {
	var in []serializedModel
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("training: decoding model set: %w", err)
	}
	set := NewModelSet()
	for i, sm := range in {
		m, err := decodeModel(sm)
		if err != nil {
			return nil, fmt.Errorf("training: model %d (%s/%s): %w", i, sm.Kind, sm.Arch, err)
		}
		key := Key{Kind: m.Target.Kind, OrderAware: m.Target.OrderAware, Arch: m.Arch}
		if _, dup := set.models[key]; dup {
			return nil, fmt.Errorf("training: model %d (%s/%s): duplicate registry entry", i, sm.Kind, sm.Arch)
		}
		set.Put(m)
	}
	return set, nil
}

// --- checkpointing ---
//
// A Checkpointer persists per-target pipeline stages under
//
//	<dir>/<arch>/meta.json                     training options fingerprint
//	<dir>/<arch>/<kind>-<mode>.labels.json     Phase-I (seed, best) pairs
//	<dir>/<arch>/<kind>-<mode>.dataset.json    Phase-II labelled features
//	<dir>/<arch>/<kind>-<mode>.model.json      trained model (serializedModel)
//
// where <mode> is "ordered" or "oblivious". Files are written atomically
// (temp file + rename), so a run killed mid-write never leaves a torn
// checkpoint, and every artifact round-trips exactly: resuming from a
// checkpoint yields the same registry bytes as an uninterrupted run.

// Checkpointer stores and restores pipeline stages in a directory.
type Checkpointer struct {
	dir string
}

// NewCheckpointer creates (if needed) the checkpoint directory.
func NewCheckpointer(dir string) (*Checkpointer, error) {
	if dir == "" {
		return nil, errors.New("training: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("training: checkpoint dir: %w", err)
	}
	return &Checkpointer{dir: dir}, nil
}

// Dir returns the checkpoint root.
func (c *Checkpointer) Dir() string { return c.dir }

func targetSlug(tgt adt.ModelTarget) string {
	mode := "oblivious"
	if tgt.OrderAware {
		mode = "ordered"
	}
	return tgt.Kind.String() + "-" + mode
}

func (c *Checkpointer) path(arch string, tgt adt.ModelTarget, stage string) string {
	return filepath.Join(c.dir, arch, targetSlug(tgt)+"."+stage+".json")
}

// writeJSON atomically writes v as JSON to path.
func (c *Checkpointer) writeJSON(path string, v any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("training: checkpoint: %w", err)
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("training: checkpoint %s: %w", path, err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("training: checkpoint %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("training: checkpoint %s: %w", path, err)
	}
	return nil
}

// readJSON loads path into v, reporting ok=false when the file does not
// exist (the stage has not completed yet).
func (c *Checkpointer) readJSON(path string, v any) (bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("training: checkpoint %s: %w", path, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("training: corrupt checkpoint %s: %w", path, err)
	}
	return true, nil
}

// metaFingerprint is the canonical encoding of everything that affects a
// training run's output. Worker count is deliberately excluded: it changes
// wall-clock time, never results.
func metaFingerprint(opt Options, annCfg ann.Config) ([]byte, error) {
	opt.Workers = 0
	return json.Marshal(struct {
		Opt Options
		ANN ann.Config
	}{opt, annCfg})
}

// EnsureMeta records the run's options fingerprint for an architecture, or
// — when a fingerprint is already present — verifies it matches, refusing
// to resume a checkpoint produced under different training options.
func (c *Checkpointer) EnsureMeta(opt Options, annCfg ann.Config) error {
	want, err := metaFingerprint(opt, annCfg)
	if err != nil {
		return fmt.Errorf("training: checkpoint meta: %w", err)
	}
	path := filepath.Join(c.dir, opt.Arch.Name, "meta.json")
	have, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("training: checkpoint meta: %w", err)
		}
		return os.WriteFile(path, append(want, '\n'), 0o644)
	}
	if err != nil {
		return fmt.Errorf("training: checkpoint meta: %w", err)
	}
	if !bytes.Equal(bytes.TrimSpace(have), want) {
		return fmt.Errorf("training: checkpoint %s was written with different training options; use a fresh checkpoint directory or drop -resume", c.dir)
	}
	return nil
}

// ckptLabel is the on-disk form of one Phase-I record.
type ckptLabel struct {
	Seed int64  `json:"seed"`
	Best string `json:"best"`
}

// SaveLabels checkpoints a target's completed Phase-I output.
func (c *Checkpointer) SaveLabels(arch string, tgt adt.ModelTarget, labels []SeedLabel) error {
	out := make([]ckptLabel, len(labels))
	for i, l := range labels {
		out[i] = ckptLabel{Seed: l.Seed, Best: l.Best.String()}
	}
	return c.writeJSON(c.path(arch, tgt, "labels"), out)
}

// LoadLabels restores a target's Phase-I output, if checkpointed.
func (c *Checkpointer) LoadLabels(arch string, tgt adt.ModelTarget) ([]SeedLabel, bool, error) {
	var in []ckptLabel
	ok, err := c.readJSON(c.path(arch, tgt, "labels"), &in)
	if !ok || err != nil {
		return nil, false, err
	}
	labels := make([]SeedLabel, len(in))
	for i, l := range in {
		kind, err := adt.ParseKind(l.Best)
		if err != nil {
			return nil, false, fmt.Errorf("training: corrupt checkpoint label %d: %w", i, err)
		}
		labels[i] = SeedLabel{Seed: l.Seed, Best: kind}
	}
	return labels, true, nil
}

// ckptDataset is the on-disk form of a Phase-II dataset.
type ckptDataset struct {
	Kind       string            `json:"kind"`
	OrderAware bool              `json:"order_aware"`
	Candidates []string          `json:"candidates"`
	Dropped    int               `json:"dropped"`
	Examples   []ckptExample     `json:"examples"`
	Profiles   []profile.Profile `json:"profiles"`
}

type ckptExample struct {
	X     []float64 `json:"x"`
	Label int       `json:"label"`
}

// SaveDataset checkpoints a target's completed Phase-II dataset.
func (c *Checkpointer) SaveDataset(arch string, ds Dataset) error {
	out := ckptDataset{
		Kind:       ds.Target.Kind.String(),
		OrderAware: ds.Target.OrderAware,
		Candidates: make([]string, len(ds.Candidates)),
		Dropped:    ds.Dropped,
		Examples:   make([]ckptExample, len(ds.Examples)),
		Profiles:   ds.Profiles,
	}
	for i, k := range ds.Candidates {
		out.Candidates[i] = k.String()
	}
	for i, e := range ds.Examples {
		out.Examples[i] = ckptExample{X: e.X, Label: e.Label}
	}
	return c.writeJSON(c.path(arch, ds.Target, "dataset"), out)
}

// LoadDataset restores a target's Phase-II dataset, if checkpointed.
func (c *Checkpointer) LoadDataset(arch string, tgt adt.ModelTarget) (Dataset, bool, error) {
	var in ckptDataset
	path := c.path(arch, tgt, "dataset")
	ok, err := c.readJSON(path, &in)
	if !ok || err != nil {
		return Dataset{}, false, err
	}
	ds := Dataset{
		Target:     tgt,
		Candidates: make([]adt.Kind, len(in.Candidates)),
		Profiles:   in.Profiles,
		Dropped:    in.Dropped,
	}
	for i, c := range in.Candidates {
		k, err := adt.ParseKind(c)
		if err != nil {
			return Dataset{}, false, fmt.Errorf("training: corrupt checkpoint %s: candidate %d: %w", path, i, err)
		}
		ds.Candidates[i] = k
	}
	ds.Examples = make([]ann.Example, len(in.Examples))
	for i, e := range in.Examples {
		if e.Label < 0 || e.Label >= len(ds.Candidates) {
			return Dataset{}, false, fmt.Errorf("training: corrupt checkpoint %s: example %d label %d out of range", path, i, e.Label)
		}
		ds.Examples[i] = ann.Example{X: e.X, Label: e.Label}
	}
	return ds, true, nil
}

// SaveModel checkpoints a target's trained model, marking the target
// finished: a subsequent resumed run skips it entirely.
func (c *Checkpointer) SaveModel(m *Model) error {
	sm, err := encodeModel(m)
	if err != nil {
		return err
	}
	return c.writeJSON(c.path(m.Arch, m.Target, "model"), sm)
}

// LoadModel restores a target's trained model, if checkpointed. The model
// passes the same validation as registry entries.
func (c *Checkpointer) LoadModel(arch string, tgt adt.ModelTarget) (*Model, bool, error) {
	var sm serializedModel
	path := c.path(arch, tgt, "model")
	ok, err := c.readJSON(path, &sm)
	if !ok || err != nil {
		return nil, false, err
	}
	m, err := decodeModel(sm)
	if err != nil {
		return nil, false, fmt.Errorf("training: corrupt checkpoint %s: %w", path, err)
	}
	return m, true, nil
}
