package training

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/adt"
	"repro/internal/ann"
)

// serializedModel is the on-disk form of one model.
type serializedModel struct {
	Kind       string          `json:"kind"`
	OrderAware bool            `json:"order_aware"`
	Arch       string          `json:"arch"`
	Candidates []string        `json:"candidates"`
	Network    json.RawMessage `json:"network"`
}

// Save writes every model in the set as a JSON array, the "trained model
// shipped with the library" artifact of the paper's install-time vision.
func (s *ModelSet) Save(w io.Writer) error {
	var out []serializedModel
	for _, m := range s.models {
		var net bytes.Buffer
		if err := m.Net.Save(&net); err != nil {
			return fmt.Errorf("training: serializing %v/%s: %w", m.Target.Kind, m.Arch, err)
		}
		cands := make([]string, len(m.Candidates))
		for i, c := range m.Candidates {
			cands[i] = c.String()
		}
		out = append(out, serializedModel{
			Kind:       m.Target.Kind.String(),
			OrderAware: m.Target.OrderAware,
			Arch:       m.Arch,
			Candidates: cands,
			Network:    json.RawMessage(bytes.TrimSpace(net.Bytes())),
		})
	}
	return json.NewEncoder(w).Encode(out)
}

// LoadModelSet reads a model registry written by Save.
func LoadModelSet(r io.Reader) (*ModelSet, error) {
	var in []serializedModel
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("training: decoding model set: %w", err)
	}
	set := NewModelSet()
	for i, sm := range in {
		kind, err := adt.ParseKind(sm.Kind)
		if err != nil {
			return nil, fmt.Errorf("training: model %d: %w", i, err)
		}
		cands := make([]adt.Kind, len(sm.Candidates))
		for j, c := range sm.Candidates {
			k, err := adt.ParseKind(c)
			if err != nil {
				return nil, fmt.Errorf("training: model %d candidate %d: %w", i, j, err)
			}
			cands[j] = k
		}
		net, err := ann.Load(bytes.NewReader(sm.Network))
		if err != nil {
			return nil, fmt.Errorf("training: model %d network: %w", i, err)
		}
		set.Put(&Model{
			Target:     adt.ModelTarget{Kind: kind, OrderAware: sm.OrderAware},
			Arch:       sm.Arch,
			Candidates: cands,
			Net:        net,
		})
	}
	return set, nil
}
