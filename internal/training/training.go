// Package training implements the two-phase training framework of
// Section 4.3. Phase-I (Algorithm 1) generates seeded synthetic
// applications, runs every interchangeable candidate on the target machine
// and records (seed, best data structure) pairs — keeping a label only when
// the winner beats every alternative by the 5% margin. Phase-II
// (Algorithm 2) replays each recorded seed with the *original* container
// under instrumentation, collects the software and hardware features, and
// labels the feature vector with the Phase-I winner. One ANN is trained per
// (original container, microarchitecture).
package training

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/appgen"
	"repro/internal/machine"
	"repro/internal/profile"
)

// Options configures a training run.
type Options struct {
	AppCfg        appgen.Config
	Arch          machine.Config
	PerTargetApps int     // Phase-I stops after this many labelled apps (the "need more sets" threshold)
	Margin        float64 // best-DS decisiveness margin; the paper uses 0.05
	MaxSeeds      int     // Phase-I safety bound on generated applications
	SeedBase      int64   // first seed; training and validation use disjoint ranges
	Workers       int     // parallel app executions; 0 = GOMAXPROCS
}

// DefaultOptions returns a laptop-scale training budget.
func DefaultOptions(arch machine.Config) Options {
	return Options{
		AppCfg:        appgen.DefaultConfig(),
		Arch:          arch,
		PerTargetApps: 300,
		Margin:        0.05,
		MaxSeeds:      4000,
		SeedBase:      1,
		Workers:       0,
	}
}

func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SeedLabel is one Phase-I record: the application seed and its best kind.
type SeedLabel struct {
	Seed int64
	Best adt.Kind
}

// forEachSeed runs fn(seed) over [base, base+n) on a worker pool and calls
// collect(i, result) in deterministic seed order.
func forEachSeed[T any](base int64, n, workers int, fn func(seed int64) T, collect func(idx int, v T)) {
	type job struct {
		idx  int
		seed int64
	}
	jobs := make(chan job)
	results := make([]T, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				results[j.idx] = fn(j.seed)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- job{i, base + int64(i)}
	}
	close(jobs)
	wg.Wait()
	for i := 0; i < n; i++ {
		collect(i, results[i])
	}
}

// Phase1 implements Algorithm 1 for one model target. It returns up to
// opt.PerTargetApps (seed, best) pairs, scanning at most opt.MaxSeeds
// seeds. Execution-time measurement is the simulated cycle count.
func Phase1(target adt.ModelTarget, opt Options) []SeedLabel {
	type outcome struct {
		best     adt.Kind
		decisive bool
	}
	var labels []SeedLabel
	batch := opt.workers() * 8
	if batch > opt.MaxSeeds {
		batch = opt.MaxSeeds
	}
	for start := 0; start < opt.MaxSeeds && len(labels) < opt.PerTargetApps; start += batch {
		n := batch
		if start+n > opt.MaxSeeds {
			n = opt.MaxSeeds - start
		}
		forEachSeed(opt.SeedBase+int64(start), n, opt.workers(),
			func(seed int64) outcome {
				app := appgen.Generate(opt.AppCfg, target, seed)
				results := app.RunAll(opt.AppCfg, opt.Arch)
				best, decisive := appgen.Best(results, opt.Margin)
				return outcome{best: results[best].Kind, decisive: decisive}
			},
			func(i int, o outcome) {
				if o.decisive && len(labels) < opt.PerTargetApps {
					labels = append(labels, SeedLabel{Seed: opt.SeedBase + int64(start+i), Best: o.best})
				}
			})
	}
	return labels
}

// Dataset is the Phase-II product for one target: feature vectors from the
// instrumented original container, labelled with candidate indices.
type Dataset struct {
	Target     adt.ModelTarget
	Candidates []adt.Kind // label index space; original first
	Examples   []ann.Example
	Profiles   []profile.Profile
}

// CandidateIndex returns the label index of kind, or -1.
func (d *Dataset) CandidateIndex(kind adt.Kind) int {
	for i, k := range d.Candidates {
		if k == kind {
			return i
		}
	}
	return -1
}

// Phase2 implements Algorithm 2: regenerate each labelled application from
// its seed, execute the original container under instrumentation, and emit
// the (features, best) training pair.
func Phase2(target adt.ModelTarget, labels []SeedLabel, opt Options) Dataset {
	ds := Dataset{
		Target:     target,
		Candidates: adt.CandidatesWithOriginal(target.Kind, target.OrderAware),
	}
	type pair struct {
		prof  profile.Profile
		label int
	}
	n := len(labels)
	results := make([]pair, n)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < opt.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				lab := labels[i]
				app := appgen.Generate(opt.AppCfg, target, lab.Seed)
				m := machine.New(opt.Arch)
				res := app.Run(opt.AppCfg, target.Kind, m)
				results[i] = pair{prof: res.Profile, label: ds.CandidateIndex(lab.Best)}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, p := range results {
		if p.label < 0 {
			continue // defensive: label outside candidate space
		}
		ds.Examples = append(ds.Examples, ann.Example{X: p.prof.Vector(), Label: p.label})
		ds.Profiles = append(ds.Profiles, p.prof)
	}
	return ds
}

// Model is one trained predictor for (target container, architecture).
type Model struct {
	Target     adt.ModelTarget
	Arch       string
	Candidates []adt.Kind
	Net        *ann.Network
}

// Predict maps a profile of the original container to the suggested kind.
func (m *Model) Predict(p *profile.Profile) adt.Kind {
	return m.Candidates[m.Net.Predict(p.Vector())]
}

// TrainModel fits an ANN on the dataset.
func TrainModel(ds Dataset, archName string, cfg ann.Config) (*Model, error) {
	if len(ds.Examples) == 0 {
		return nil, fmt.Errorf("training: empty dataset for %v/%v", ds.Target.Kind, archName)
	}
	net := ann.New(profile.NumFeatures, len(ds.Candidates), cfg)
	if _, err := net.Train(ds.Examples); err != nil {
		return nil, fmt.Errorf("training: %v/%v: %w", ds.Target.Kind, archName, err)
	}
	return &Model{Target: ds.Target, Arch: archName, Candidates: ds.Candidates, Net: net}, nil
}

// Key identifies a model in a ModelSet.
type Key struct {
	Kind       adt.Kind
	OrderAware bool
	Arch       string
}

// ModelSet is the registry of trained models, one per (original container,
// order-awareness, microarchitecture), mirroring Figure 3.
type ModelSet struct {
	models map[Key]*Model
}

// NewModelSet returns an empty registry.
func NewModelSet() *ModelSet { return &ModelSet{models: map[Key]*Model{}} }

// Put registers a model.
func (s *ModelSet) Put(m *Model) {
	s.models[Key{Kind: m.Target.Kind, OrderAware: m.Target.OrderAware, Arch: m.Arch}] = m
}

// Get looks up the model for a target and architecture.
func (s *ModelSet) Get(kind adt.Kind, orderAware bool, arch string) (*Model, bool) {
	m, ok := s.models[Key{Kind: kind, OrderAware: orderAware, Arch: arch}]
	return m, ok
}

// Len returns the number of registered models.
func (s *ModelSet) Len() int { return len(s.models) }

// TrainAll runs Phase-I, Phase-II, and model fitting for every target on
// the options' architecture, returning the populated registry.
func TrainAll(opt Options, annCfg ann.Config, targets []adt.ModelTarget) (*ModelSet, error) {
	set := NewModelSet()
	for _, tgt := range targets {
		labels := Phase1(tgt, opt)
		ds := Phase2(tgt, labels, opt)
		m, err := TrainModel(ds, opt.Arch.Name, annCfg)
		if err != nil {
			return nil, err
		}
		set.Put(m)
	}
	return set, nil
}

// Oracle runs every candidate of the app on a fresh machine and returns the
// empirically fastest kind — the paper's Oracle scheme.
func Oracle(app *appgen.App, cfg appgen.Config, arch machine.Config) adt.Kind {
	results := app.RunAll(cfg, arch)
	best, _ := appgen.Best(results, 0)
	return results[best].Kind
}

// Validate implements the Figure 9 protocol: generate n fresh applications
// (seeds disjoint from training) for the model's target, label each with
// the oracle, and return the fraction the model predicts correctly.
func Validate(m *Model, opt Options, n int, seedBase int64) float64 {
	if n <= 0 {
		return 0
	}
	type res struct{ correct bool }
	correct := 0
	forEachSeed(seedBase, n, opt.workers(),
		func(seed int64) res {
			app := appgen.Generate(opt.AppCfg, m.Target, seed)
			oracle := Oracle(&app, opt.AppCfg, opt.Arch)
			mach := machine.New(opt.Arch)
			run := app.Run(opt.AppCfg, m.Target.Kind, mach)
			pred := m.Predict(&run.Profile)
			return res{correct: pred == oracle}
		},
		func(_ int, r res) {
			if r.correct {
				correct++
			}
		})
	return float64(correct) / float64(n)
}
