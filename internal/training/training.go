// Package training implements the two-phase training framework of
// Section 4.3. Phase-I (Algorithm 1) generates seeded synthetic
// applications, runs every interchangeable candidate on the target machine
// and records (seed, best data structure) pairs — keeping a label only when
// the winner beats every alternative by the 5% margin. Phase-II
// (Algorithm 2) replays each recorded seed with the *original* container
// under instrumentation, collects the software and hardware features, and
// labels the feature vector with the Phase-I winner. One ANN is trained per
// (original container, microarchitecture).
//
// All entry points take a context and run as a streaming pipeline on a
// persistent worker pool; see pipeline.go. TrainArchs additionally supports
// checkpoint/resume via a Checkpointer (persist.go).
package training

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/appgen"
	"repro/internal/machine"
	"repro/internal/profile"
)

// Options configures a training run.
type Options struct {
	AppCfg        appgen.Config
	Arch          machine.Config
	PerTargetApps int     // Phase-I stops after this many labelled apps (the "need more sets" threshold)
	Margin        float64 // best-DS decisiveness margin; the paper uses 0.05
	MaxSeeds      int     // Phase-I safety bound on generated applications
	SeedBase      int64   // first seed; training and validation use disjoint ranges
	Workers       int     // parallel app executions; 0 = GOMAXPROCS
}

// DefaultOptions returns a laptop-scale training budget.
func DefaultOptions(arch machine.Config) Options {
	return Options{
		AppCfg:        appgen.DefaultConfig(),
		Arch:          arch,
		PerTargetApps: 300,
		Margin:        0.05,
		MaxSeeds:      4000,
		SeedBase:      1,
		Workers:       0,
	}
}

func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SeedLabel is one Phase-I record: the application seed and its best kind.
type SeedLabel struct {
	Seed int64
	Best adt.Kind
}

// Phase1 implements Algorithm 1 for one model target. It returns up to
// opt.PerTargetApps (seed, best) pairs, scanning at most opt.MaxSeeds
// seeds. Execution-time measurement is the simulated cycle count.
//
// Seeds are simulated on a worker pool, but labels are selected in strict
// seed order and dispatch stops as soon as enough decisive labels exist, so
// the result is deterministic for a fixed Options and identical to an
// exhaustive sequential scan. Cancel ctx to abandon the scan; the context's
// error is returned.
func Phase1(ctx context.Context, target adt.ModelTarget, opt Options) ([]SeedLabel, error) {
	p := newPool(opt.workers())
	defer p.close()
	labels, _, _, err := phase1(ctx, target, opt, p)
	return labels, err
}

// Dataset is the Phase-II product for one target: feature vectors from the
// instrumented original container, labelled with candidate indices.
type Dataset struct {
	Target     adt.ModelTarget
	Candidates []adt.Kind // label index space; original first
	Examples   []ann.Example
	Profiles   []profile.Profile
	Dropped    int // labels discarded because the winner was outside Candidates
}

// CandidateIndex returns the label index of kind, or -1.
func (d *Dataset) CandidateIndex(kind adt.Kind) int {
	for i, k := range d.Candidates {
		if k == kind {
			return i
		}
	}
	return -1
}

// Phase2 implements Algorithm 2: regenerate each labelled application from
// its seed, execute the original container under instrumentation, and emit
// the (features, best) training pair. Labels whose winner is outside the
// candidate space are counted in Dataset.Dropped; if every label is
// dropped, Phase2 returns an error.
func Phase2(ctx context.Context, target adt.ModelTarget, labels []SeedLabel, opt Options) (Dataset, error) {
	p := newPool(opt.workers())
	defer p.close()
	ds, _, err := phase2(ctx, target, labels, opt, p)
	return ds, err
}

// Model is one trained predictor for (target container, architecture).
type Model struct {
	Target     adt.ModelTarget
	Arch       string
	Candidates []adt.Kind
	Net        *ann.Network
}

// Predict maps a profile of the original container to the suggested kind.
func (m *Model) Predict(p *profile.Profile) adt.Kind {
	return m.Candidates[m.Net.Predict(p.Vector())]
}

// TrainModel fits an ANN on the dataset.
func TrainModel(ds Dataset, archName string, cfg ann.Config) (*Model, error) {
	if len(ds.Examples) == 0 {
		return nil, fmt.Errorf("training: empty dataset for %v/%v", ds.Target.Kind, archName)
	}
	net := ann.New(profile.NumFeatures, len(ds.Candidates), cfg)
	if _, err := net.Train(ds.Examples); err != nil {
		return nil, fmt.Errorf("training: %v/%v: %w", ds.Target.Kind, archName, err)
	}
	return &Model{Target: ds.Target, Arch: archName, Candidates: ds.Candidates, Net: net}, nil
}

// Key identifies a model in a ModelSet.
type Key struct {
	Kind       adt.Kind
	OrderAware bool
	Arch       string
}

// ModelSet is the registry of trained models, one per (original container,
// order-awareness, microarchitecture), mirroring Figure 3.
type ModelSet struct {
	models map[Key]*Model
}

// NewModelSet returns an empty registry.
func NewModelSet() *ModelSet { return &ModelSet{models: map[Key]*Model{}} }

// Put registers a model.
func (s *ModelSet) Put(m *Model) {
	s.models[Key{Kind: m.Target.Kind, OrderAware: m.Target.OrderAware, Arch: m.Arch}] = m
}

// Get looks up the model for a target and architecture.
func (s *ModelSet) Get(kind adt.Kind, orderAware bool, arch string) (*Model, bool) {
	m, ok := s.models[Key{Kind: kind, OrderAware: orderAware, Arch: arch}]
	return m, ok
}

// Len returns the number of registered models.
func (s *ModelSet) Len() int { return len(s.models) }

// TrainAll runs Phase-I, Phase-II, and model fitting for every target on
// the options' architecture, returning the populated registry. It is the
// single-architecture form of TrainArchs; the targets share one worker
// pool and progress concurrently.
func TrainAll(ctx context.Context, opt Options, annCfg ann.Config, targets []adt.ModelTarget) (*ModelSet, error) {
	return TrainArchs(ctx, []Options{opt}, annCfg, targets, PipelineConfig{Workers: opt.Workers})
}

// Oracle runs every candidate of the app on a fresh machine and returns the
// empirically fastest kind — the paper's Oracle scheme.
func Oracle(app *appgen.App, cfg appgen.Config, arch machine.Config) adt.Kind {
	results := app.RunAll(cfg, arch)
	best, _ := appgen.Best(results, 0)
	return results[best].Kind
}

// Validate implements the Figure 9 protocol: generate n fresh applications
// (seeds disjoint from training) for the model's target, label each with
// the oracle, and return the fraction the model predicts correctly.
func Validate(ctx context.Context, m *Model, opt Options, n int, seedBase int64) (float64, error) {
	p := newPool(opt.workers())
	defer p.close()
	acc, _, err := validate(ctx, m, opt, n, seedBase, p)
	return acc, err
}
