package training

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// RunReport is the machine-readable end-of-run summary brainy-train emits
// with -report: where the wall clock went, what Phase-I decided, how the
// models validated, and how hard the simulator worked. The schema is
// versioned so downstream tooling can evolve with it.
type RunReport struct {
	SchemaVersion int       `json:"schema_version"`
	StartedAt     time.Time `json:"started_at"`
	FinishedAt    time.Time `json:"finished_at"`
	WallSeconds   float64   `json:"wall_seconds"`

	// Totals across every (target, architecture) unit.
	SeedsScanned  uint64  `json:"seeds_scanned"`
	LabelsFound   uint64  `json:"labels_found"`
	Examples      uint64  `json:"phase2_examples"`
	Dropped       uint64  `json:"phase2_dropped"`
	ModelsTrained int     `json:"models_trained"`
	Resumed       int     `json:"targets_resumed"`
	SimCycles     float64 `json:"simulated_cycles"`
	SimEvents     uint64  `json:"simulated_events"`
	SeedsPerSec   float64 `json:"seeds_per_sec"`
	EventsPerSec  float64 `json:"events_per_sec"`

	// StageSeconds aggregates per-stage wall clock across all units. The
	// stages run concurrently on one pool, so these sum to more than
	// WallSeconds on multi-worker runs; they show where the budget went.
	StageSeconds map[string]float64 `json:"stage_seconds"`

	// LabelDistribution counts Phase-I decisive labels by winning kind,
	// keyed "arch/target" then kind.
	LabelDistribution map[string]map[string]int `json:"label_distribution"`

	Targets []TargetReport `json:"targets"`
}

// TargetReport is one (target, architecture) unit of the report.
type TargetReport struct {
	Arch          string             `json:"arch"`
	Target        string             `json:"target"`
	OrderAware    bool               `json:"order_aware"`
	Resumed       bool               `json:"resumed"`
	SeedsScanned  int                `json:"seeds_scanned"`
	Labels        int                `json:"labels"`
	Examples      int                `json:"examples"`
	Dropped       int                `json:"dropped,omitempty"`
	TrainAccuracy float64            `json:"train_accuracy"`
	ValApps       int                `json:"validation_apps,omitempty"`
	ValAccuracy   float64            `json:"validation_accuracy,omitempty"`
	ElapsedSec    float64            `json:"elapsed_seconds"`
	StageSeconds  map[string]float64 `json:"stage_seconds"`
	SimCycles     float64            `json:"simulated_cycles"`
	SimEvents     uint64             `json:"simulated_events"`
}

// stageSeconds flattens a StageTimes into the report's map form, omitting
// stages that never ran.
func stageSeconds(st StageTimes) map[string]float64 {
	out := make(map[string]float64, 5)
	put := func(name string, d time.Duration) {
		if d > 0 {
			out[name] = d.Seconds()
		}
	}
	put("phase1", st.Phase1)
	put("phase2", st.Phase2)
	put("fit", st.Fit)
	put("validate", st.Validate)
	put("checkpoint", st.Checkpoint)
	return out
}

// BuildReport assembles the run report from the per-target results
// TrainArchs delivered between start and finish.
func BuildReport(results []TargetResult, start, finish time.Time) RunReport {
	r := RunReport{
		SchemaVersion:     1,
		StartedAt:         start.UTC(),
		FinishedAt:        finish.UTC(),
		WallSeconds:       finish.Sub(start).Seconds(),
		StageSeconds:      map[string]float64{},
		LabelDistribution: map[string]map[string]int{},
	}
	// Deterministic report order regardless of completion interleaving.
	sorted := append([]TargetResult(nil), results...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Arch != b.Arch {
			return a.Arch < b.Arch
		}
		at, bt := targetName(a), targetName(b)
		if at != bt {
			return at < bt
		}
		return !a.Model.Target.OrderAware && b.Model.Target.OrderAware
	})
	for _, res := range sorted {
		name := targetName(res)
		tr := TargetReport{
			Arch:          res.Arch,
			Target:        name,
			OrderAware:    res.Model.Target.OrderAware,
			Resumed:       res.Resumed,
			SeedsScanned:  res.SeedsScanned,
			Labels:        res.Labels,
			Examples:      res.Examples,
			Dropped:       res.Dropped,
			TrainAccuracy: res.TrainAccuracy,
			ValApps:       res.ValApps,
			ValAccuracy:   res.ValAccuracy,
			ElapsedSec:    res.Elapsed.Seconds(),
			StageSeconds:  stageSeconds(res.Stages),
			SimCycles:     res.HW.Cycles,
			SimEvents:     res.HW.Events(),
		}
		r.Targets = append(r.Targets, tr)

		r.SeedsScanned += uint64(res.SeedsScanned)
		r.LabelsFound += uint64(res.Labels)
		r.Examples += uint64(res.Examples)
		r.Dropped += uint64(res.Dropped)
		r.ModelsTrained++
		if res.Resumed {
			r.Resumed++
		}
		r.SimCycles += res.HW.Cycles
		r.SimEvents += res.HW.Events()
		for stage, sec := range tr.StageSeconds {
			r.StageSeconds[stage] += sec
		}
		if len(res.LabelDist) > 0 {
			r.LabelDistribution[res.Arch+"/"+name] = res.LabelDist
		}
	}
	if r.WallSeconds > 0 {
		r.SeedsPerSec = float64(r.SeedsScanned) / r.WallSeconds
		r.EventsPerSec = float64(r.SimEvents) / r.WallSeconds
	}
	return r
}

// targetName renders a result's target identity, distinguishing the
// order-aware and order-oblivious models of one kind.
func targetName(res TargetResult) string {
	name := res.Model.Target.Kind.String()
	if res.Model.Target.OrderAware {
		return name + "(ordered)"
	}
	return name
}

// WriteJSON serializes the report, indented, to w.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
