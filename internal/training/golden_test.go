package training

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/adt"
	"repro/internal/appgen"
	"repro/internal/machine"
)

// The golden corpus pins label equivalence across simulator rewrites: for a
// fixed 200-seed appgen corpus per (target, architecture), the Phase-I label
// of every seed and every non-cycle performance counter must stay
// bit-identical, and cycle totals may drift only within floatDriftBound
// (rewrites may change float64 accumulation order or move to fixed point,
// but never by enough to flip a 5% label margin).
//
// Regenerate with:
//
//	go test ./internal/training -run TestGoldenLabelEquivalence -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite the simulator golden files in testdata/")

const (
	goldenSeeds = 200
	// floatDriftBound is the allowed relative drift in per-seed cycle
	// totals. Reordered or fixed-point accumulation of the same event
	// stream stays many orders of magnitude inside this; a modeling change
	// does not.
	floatDriftBound = 1e-6
)

type goldenSeed struct {
	Seed     int64   `json:"seed"`
	Best     string  `json:"best"`
	Decisive bool    `json:"decisive"`
	Counters string  `json:"counters"` // sha256 over all candidates' non-cycle counters
	Cycles   float64 `json:"cycles"`   // summed simulated cycles across candidates
}

type goldenFile struct {
	Arch   string       `json:"arch"`
	Target string       `json:"target"`
	Calls  int          `json:"calls"`
	Seeds  []goldenSeed `json:"seeds"`
}

// goldenOptions is the fixed corpus configuration. Small call counts keep
// the 200-seed x all-candidates sweep fast while still exercising every
// event type (straddling accesses, TLB walks, mispredicts, allocs).
func goldenOptions(arch machine.Config) Options {
	opt := DefaultOptions(arch)
	opt.AppCfg.TotalInterfCalls = 60
	opt.AppCfg.MaxPrepopulate = 240
	opt.AppCfg.MaxIterCount = 240
	opt.MaxSeeds = goldenSeeds
	opt.SeedBase = 1
	return opt
}

func goldenTargets() []adt.ModelTarget {
	return []adt.ModelTarget{
		{Kind: adt.KindVector, OrderAware: false}, // widest candidate space
		{Kind: adt.KindSet, OrderAware: true},
	}
}

// hashCounters folds every non-cycle counter field of every candidate run
// into one digest. Cycles is deliberately excluded: it is the one field
// allowed to drift (within floatDriftBound) across accumulation rewrites.
func hashCounters(results []appgen.Result) string {
	h := sha256.New()
	for _, r := range results {
		c := r.Profile.HW
		fmt.Fprintf(h, "%d|%d %d %d %d %d %d %d %d %d %d %d %d %d\n",
			r.Kind,
			c.Reads, c.Writes, c.L1Accesses, c.L1Misses,
			c.L2Accesses, c.L2Misses, c.Branches, c.Mispredicts,
			c.TLBAccesses, c.TLBMisses, c.Allocs, c.Frees, c.BytesAlloced)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func goldenPath(arch string, tgt adt.ModelTarget) string {
	mode := "oblivious"
	if tgt.OrderAware {
		mode = "aware"
	}
	return filepath.Join("testdata", fmt.Sprintf("golden_%s_%v_%s.json", arch, tgt.Kind, mode))
}

// computeGolden runs the fixed corpus: every seed, every candidate, fresh
// machine per run — exactly the per-seed work of Algorithm 1.
func computeGolden(tgt adt.ModelTarget, opt Options) goldenFile {
	gf := goldenFile{
		Arch:   opt.Arch.Name,
		Target: fmt.Sprintf("%v/aware=%v", tgt.Kind, tgt.OrderAware),
		Calls:  opt.AppCfg.TotalInterfCalls,
	}
	for i := 0; i < goldenSeeds; i++ {
		seed := opt.SeedBase + int64(i)
		app := appgen.Generate(opt.AppCfg, tgt, seed)
		results := app.RunAll(opt.AppCfg, opt.Arch)
		best, decisive := appgen.Best(results, opt.Margin)
		var cycles float64
		for _, r := range results {
			cycles += r.Cycles
		}
		gf.Seeds = append(gf.Seeds, goldenSeed{
			Seed:     seed,
			Best:     fmt.Sprintf("%v", results[best].Kind),
			Decisive: decisive,
			Counters: hashCounters(results),
			Cycles:   cycles,
		})
	}
	return gf
}

func TestGoldenLabelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus sweep skipped in -short mode")
	}
	for _, arch := range []machine.Config{machine.Core2(), machine.Atom()} {
		for _, tgt := range goldenTargets() {
			arch, tgt := arch, tgt
			t.Run(fmt.Sprintf("%s/%v/aware=%v", arch.Name, tgt.Kind, tgt.OrderAware), func(t *testing.T) {
				t.Parallel()
				opt := goldenOptions(arch)
				got := computeGolden(tgt, opt)
				path := goldenPath(arch.Name, tgt)
				if *updateGolden {
					data, err := json.MarshalIndent(got, "", " ")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("wrote %s", path)
					return
				}
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update-golden): %v", err)
				}
				var want goldenFile
				if err := json.Unmarshal(data, &want); err != nil {
					t.Fatalf("corrupt golden file %s: %v", path, err)
				}
				if len(want.Seeds) != len(got.Seeds) {
					t.Fatalf("golden has %d seeds, corpus produced %d", len(want.Seeds), len(got.Seeds))
				}
				for i, w := range want.Seeds {
					g := got.Seeds[i]
					if g.Seed != w.Seed {
						t.Fatalf("seed order drift at %d: %d vs %d", i, g.Seed, w.Seed)
					}
					if g.Best != w.Best || g.Decisive != w.Decisive {
						t.Errorf("seed %d: label changed: got (%s, decisive=%v), want (%s, decisive=%v)",
							w.Seed, g.Best, g.Decisive, w.Best, w.Decisive)
					}
					if g.Counters != w.Counters {
						t.Errorf("seed %d: non-cycle counters changed (hash %s != %s)",
							w.Seed, g.Counters[:12], w.Counters[:12])
					}
					if drift := math.Abs(g.Cycles-w.Cycles) / w.Cycles; drift > floatDriftBound {
						t.Errorf("seed %d: cycle total drift %.3g exceeds %.0e (got %f, want %f)",
							w.Seed, drift, floatDriftBound, g.Cycles, w.Cycles)
					}
				}
			})
		}
	}
}

// TestPhase1MatchesGoldenCorpus ties the streaming pipeline to the golden
// brute-force labels: Phase1 over the same seed range must return exactly
// the first PerTargetApps decisive (seed, best) pairs in seed order.
func TestPhase1MatchesGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus sweep skipped in -short mode")
	}
	arch := machine.Core2()
	tgt := goldenTargets()[0]
	opt := goldenOptions(arch)
	opt.PerTargetApps = 20
	opt.Workers = 4

	var want []SeedLabel
	for i := 0; i < goldenSeeds && len(want) < opt.PerTargetApps; i++ {
		seed := opt.SeedBase + int64(i)
		app := appgen.Generate(opt.AppCfg, tgt, seed)
		results := app.RunAll(opt.AppCfg, opt.Arch)
		best, decisive := appgen.Best(results, opt.Margin)
		if decisive {
			want = append(want, SeedLabel{Seed: seed, Best: results[best].Kind})
		}
	}

	got, err := Phase1(context.Background(), tgt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Phase1 returned %d labels, brute force %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label %d: Phase1 %+v != brute force %+v", i, got[i], want[i])
		}
	}
}
