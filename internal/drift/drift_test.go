package drift

import (
	"errors"
	"testing"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/opstats"
	"repro/internal/profile"
)

// win builds one window record for a vector instance with the given
// operation mix.
func win(ctx string, inst, seq int, counts map[opstats.Op]uint64) *profile.WindowRecord {
	w := &profile.WindowRecord{
		Profile:  profile.Profile{Context: ctx, Kind: adt.KindVector},
		Instance: inst,
		Seq:      seq,
	}
	var ops uint64
	for op, n := range counts {
		w.Stats.Count[op] = n
		ops += n
	}
	w.Stats.MaxLen = 64
	w.Stats.ElemSize = 8
	w.StartOp = uint64(seq) * ops
	w.EndOp = uint64(seq)*ops + ops
	return w
}

var (
	buildMix = map[opstats.Op]uint64{opstats.OpPushBack: 90, opstats.OpIterate: 10}
	queryMix = map[opstats.Op]uint64{opstats.OpFind: 95, opstats.OpPushBack: 5}
)

func TestRulesDeterministic(t *testing.T) {
	cases := []struct {
		name string
		p    profile.Profile
		want adt.Kind
	}{
		{"find-heavy vector -> hash", profile.Profile{Kind: adt.KindVector,
			Stats: opstats.Stats{Count: counts(opstats.OpFind, 80, opstats.OpPushBack, 20)}}, adt.KindHashSet},
		{"find-heavy ordered list -> tree", profile.Profile{Kind: adt.KindList, OrderAware: true,
			Stats: opstats.Stats{Count: counts(opstats.OpFind, 80, opstats.OpPushBack, 20)}}, adt.KindSet},
		{"find-heavy set keeps", profile.Profile{Kind: adt.KindSet,
			Stats: opstats.Stats{Count: counts(opstats.OpFind, 100)}}, adt.KindSet},
		{"front-heavy vector -> deque", profile.Profile{Kind: adt.KindVector,
			Stats: opstats.Stats{Count: counts(opstats.OpPushFront, 40, opstats.OpPushBack, 60)}}, adt.KindDeque},
		{"scan-heavy list -> vector", profile.Profile{Kind: adt.KindList,
			Stats: opstats.Stats{Count: counts(opstats.OpPushBack, 50, opstats.OpIterate, 40, opstats.OpFind, 10)}}, adt.KindVector},
		{"append-heavy vector keeps", profile.Profile{Kind: adt.KindVector,
			Stats: opstats.Stats{Count: counts(opstats.OpPushBack, 90, opstats.OpIterate, 10)}}, adt.KindVector},
		{"empty profile keeps", profile.Profile{Kind: adt.KindDeque}, adt.KindDeque},
	}
	for _, tc := range cases {
		for i := 0; i < 3; i++ { // same input, same verdict, every time
			s, err := Rules(&tc.p, "core2")
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if s.Suggested != tc.want {
				t.Fatalf("%s: suggested %v, want %v", tc.name, s.Suggested, tc.want)
			}
			if s.Replace != (tc.want != tc.p.Kind) {
				t.Fatalf("%s: Replace = %v", tc.name, s.Replace)
			}
		}
	}
}

func counts(kv ...interface{}) (c [opstats.NumOps]uint64) {
	for i := 0; i < len(kv); i += 2 {
		c[kv[i].(opstats.Op)] = uint64(kv[i+1].(int))
	}
	return c
}

// TestRulesMissHeavyPrefersFlat: a lookup-heavy profile whose working set
// thrashes the caches upgrades to the flat counterpart of its family — and
// only then. Small or cache-resident profiles keep the pointer-based advice.
func TestRulesMissHeavyPrefersFlat(t *testing.T) {
	missHeavy := machine.Counters{L1Accesses: 1000, L1Misses: 400}
	cacheFriendly := machine.Counters{L1Accesses: 1000, L1Misses: 20}
	findStats := func(maxLen uint64) opstats.Stats {
		return opstats.Stats{Count: counts(opstats.OpFind, 90, opstats.OpInsert, 10), MaxLen: maxLen}
	}
	cases := []struct {
		name string
		p    profile.Profile
		want adt.Kind
	}{
		{"hash_set upgrades", profile.Profile{Kind: adt.KindHashSet, HW: missHeavy,
			Stats: findStats(1 << 15)}, adt.KindFlatHashSet},
		{"ordered set upgrades", profile.Profile{Kind: adt.KindSet, OrderAware: true, HW: missHeavy,
			Stats: findStats(1 << 15)}, adt.KindFlatBTreeSet},
		{"btree_set upgrades", profile.Profile{Kind: adt.KindBTreeSet, OrderAware: true, HW: missHeavy,
			Stats: findStats(1 << 15)}, adt.KindFlatBTreeSet},
		{"vector upgrades straight to flat", profile.Profile{Kind: adt.KindVector, HW: missHeavy,
			Stats: findStats(1 << 15)}, adt.KindFlatHashSet},
		{"map upgrades", profile.Profile{Kind: adt.KindHashMap, HW: missHeavy,
			Stats: findStats(1 << 15)}, adt.KindFlatHashMap},
		{"ordered map upgrades", profile.Profile{Kind: adt.KindMap, OrderAware: true, HW: missHeavy,
			Stats: findStats(1 << 15)}, adt.KindFlatBTreeMap},
		{"small working set keeps", profile.Profile{Kind: adt.KindHashSet, HW: missHeavy,
			Stats: findStats(256)}, adt.KindHashSet},
		{"cache-friendly keeps", profile.Profile{Kind: adt.KindHashSet, HW: cacheFriendly,
			Stats: findStats(1 << 15)}, adt.KindHashSet},
		{"already flat keeps", profile.Profile{Kind: adt.KindFlatHashSet, HW: missHeavy,
			Stats: findStats(1 << 15)}, adt.KindFlatHashSet},
		{"scan-heavy flat exits to vector", profile.Profile{Kind: adt.KindFlatHashSet, HW: missHeavy,
			Stats: opstats.Stats{Count: counts(opstats.OpIterate, 70, opstats.OpInsert, 20, opstats.OpFind, 10), MaxLen: 1 << 15}}, adt.KindVector},
	}
	for _, tc := range cases {
		s, err := Rules(&tc.p, "core2")
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if s.Suggested != tc.want {
			t.Fatalf("%s: suggested %v, want %v", tc.name, s.Suggested, tc.want)
		}
	}
}

// TestDetectorDriftsAfterHysteresis walks a timeline through a phase
// change: advice settles on vector during the build phase, then the query
// phase must push through Hysteresis consecutive divergent verdicts before
// the single drift event fires.
func TestDetectorDriftsAfterHysteresis(t *testing.T) {
	var counter opstats.Counter
	var fired []Event
	d := New(Rules, Config{
		Window:     2,
		Hysteresis: 2,
		Events:     &counter,
		OnEvent:    func(e Event) { fired = append(fired, e) },
	})

	seq := 0
	feed := func(mix map[opstats.Op]uint64) *Event {
		ev, err := d.Observe(win("demo/cache", 0, seq, mix), "core2")
		if err != nil {
			t.Fatal(err)
		}
		seq++
		return ev
	}

	for i := 0; i < 4; i++ {
		if ev := feed(buildMix); ev != nil {
			t.Fatalf("build phase raised event: %v", ev)
		}
	}
	// First query window: blend still half build mix, and even when the
	// verdict flips the streak is 1 < Hysteresis.
	if ev := feed(queryMix); ev != nil {
		t.Fatalf("drift confirmed after a single window: %v", ev)
	}
	// Keep feeding until the event fires; it must take at least one more
	// window and must fire exactly once.
	var got *Event
	for i := 0; i < 4 && got == nil; i++ {
		got = feed(queryMix)
	}
	if got == nil {
		t.Fatal("query phase never confirmed drift")
	}
	if got.From != adt.KindVector || got.To != adt.KindHashSet {
		t.Fatalf("drift %v -> %v, want vector -> hash_set", got.From, got.To)
	}
	for i := 0; i < 3; i++ {
		if ev := feed(queryMix); ev != nil {
			t.Fatalf("steady query phase re-raised drift: %v", ev)
		}
	}
	if counter.Value() != 1 || len(fired) != 1 || len(d.Events()) != 1 {
		t.Fatalf("event accounting: counter=%d callback=%d Events=%d",
			counter.Value(), len(fired), len(d.Events()))
	}
	if fired[0] != *got {
		t.Fatalf("callback saw %v, Observe returned %v", fired[0], *got)
	}

	st, ok := d.Status("demo/cache#0")
	if !ok {
		t.Fatal("instance missing from Statuses")
	}
	if st.Initial != adt.KindVector || st.Current != adt.KindHashSet || !st.Drifted() {
		t.Fatalf("status after drift: %+v", st)
	}
	if st.Windows != seq {
		t.Fatalf("status windows = %d, fed %d", st.Windows, seq)
	}
}

// TestDetectorHysteresisAbsorbsFlap: a single noisy window (and a
// noisy-then-back pattern) must not raise an event when Hysteresis > 1.
func TestDetectorHysteresisAbsorbsFlap(t *testing.T) {
	d := New(Rules, Config{Window: 1, Hysteresis: 2})
	seq := 0
	feed := func(mix map[opstats.Op]uint64) *Event {
		ev, err := d.Observe(win("demo/flap", 0, seq, mix), "core2")
		if err != nil {
			t.Fatal(err)
		}
		seq++
		return ev
	}
	feed(buildMix) // settles advice = vector
	for i := 0; i < 5; i++ {
		if ev := feed(queryMix); ev != nil && i == 0 {
			t.Fatalf("flap window raised event immediately: %v", ev)
		}
		if ev := feed(buildMix); ev != nil {
			t.Fatalf("alternating windows raised event: %v", ev)
		}
	}
	if n := len(d.Events()); n != 0 {
		t.Fatalf("flapping timeline raised %d events", n)
	}
	// Sanity: without hysteresis the same pattern would flap.
	d1 := New(Rules, Config{Window: 1, Hysteresis: 1})
	d1.Observe(win("x", 0, 0, buildMix), "core2")
	ev, _ := d1.Observe(win("x", 0, 1, queryMix), "core2")
	if ev == nil {
		t.Fatal("hysteresis=1 should confirm on the first divergent window")
	}
}

func TestDetectorMinOpsAndConfidenceGates(t *testing.T) {
	// MinOps: tiny windows never reach evaluation.
	d := New(Rules, Config{Window: 1, Hysteresis: 1, MinOps: 1000})
	tiny := map[opstats.Op]uint64{opstats.OpFind: 5}
	for i := 0; i < 10; i++ {
		if ev, err := d.Observe(win("t", 0, i, tiny), "core2"); err != nil || ev != nil {
			t.Fatalf("under MinOps: ev=%v err=%v", ev, err)
		}
	}
	if st, ok := d.Status("t#0"); !ok || st.Advised {
		t.Fatalf("instance below MinOps should be tracked but unadvised: %+v", st)
	}

	// MinConfidence: a low-confidence suggester can never move the machine.
	low := func(p *profile.Profile, arch string) (core.Suggestion, error) {
		s, _ := Rules(p, arch)
		s.Confidence = 0.1
		return s, nil
	}
	d2 := New(low, Config{Window: 1, Hysteresis: 1, MinConfidence: 0.6})
	d2.Observe(win("c", 0, 0, buildMix), "core2")
	for i := 1; i < 6; i++ {
		if ev, _ := d2.Observe(win("c", 0, i, queryMix), "core2"); ev != nil {
			t.Fatalf("low-confidence verdict confirmed drift: %v", ev)
		}
	}
}

func TestDetectorTracksInstancesIndependently(t *testing.T) {
	d := New(Rules, Config{Window: 1, Hysteresis: 1})
	// Interleave two instances of the same context: only #1 changes phase.
	for i := 0; i < 3; i++ {
		d.Observe(win("ctx", 0, i, buildMix), "core2")
		d.Observe(win("ctx", 1, i, buildMix), "core2")
	}
	ev, err := d.Observe(win("ctx", 1, 3, queryMix), "core2")
	if err != nil || ev == nil {
		t.Fatalf("instance 1 should drift: ev=%v err=%v", ev, err)
	}
	if ev.InstanceKey != "ctx#1" {
		t.Fatalf("drift attributed to %q", ev.InstanceKey)
	}
	sts := d.Statuses()
	if len(sts) != 2 || sts[0].InstanceKey != "ctx#0" || sts[1].InstanceKey != "ctx#1" {
		t.Fatalf("statuses: %+v", sts)
	}
	if sts[0].Drifted() || !sts[1].Drifted() {
		t.Fatalf("drift flags: %v %v", sts[0].Drifted(), sts[1].Drifted())
	}
}

// winK is win with an explicit container kind, for timelines whose backend
// changes mid-stream.
func winK(ctx string, inst, seq int, kind adt.Kind, counts map[opstats.Op]uint64) *profile.WindowRecord {
	w := win(ctx, inst, seq, counts)
	w.Kind = kind
	return w
}

// TestDetectorTreatsRequestedMigrationAsSettled: after the detector advises
// vector -> hash_set and the host migrates, the timeline's Kind flips to
// hash_set mid-stream. That is the migration the detector asked for — it
// must settle, not fire again or count the old-kind blend against the new
// backend.
func TestDetectorTreatsRequestedMigrationAsSettled(t *testing.T) {
	d := New(Rules, Config{Window: 2, Hysteresis: 2})
	seq := 0
	feed := func(kind adt.Kind, mix map[opstats.Op]uint64) *Event {
		ev, err := d.Observe(winK("mig", 0, seq, kind, mix), "core2")
		if err != nil {
			t.Fatal(err)
		}
		seq++
		return ev
	}
	for i := 0; i < 4; i++ {
		feed(adt.KindVector, buildMix)
	}
	var got *Event
	for i := 0; i < 6 && got == nil; i++ {
		got = feed(adt.KindVector, queryMix)
	}
	if got == nil || got.To != adt.KindHashSet {
		t.Fatalf("setup drift did not fire: %v", got)
	}
	// Host migrates: subsequent windows arrive as hash_set.
	for i := 0; i < 6; i++ {
		if ev := feed(adt.KindHashSet, queryMix); ev != nil {
			t.Fatalf("completed migration re-raised drift: %v", ev)
		}
	}
	st, ok := d.Status("mig#0")
	if !ok || st.Kind != adt.KindHashSet || st.Current != adt.KindHashSet {
		t.Fatalf("post-migration status: %+v", st)
	}
	if st.Streak != 0 || st.Events != 1 {
		t.Fatalf("post-migration state machine unsettled: %+v", st)
	}
}

// TestDetectorRebaselinesUnsolicitedSwap: a backend change the detector did
// not advise re-baselines Current on reality instead of treating the new
// kind as a divergence from stale advice.
func TestDetectorRebaselinesUnsolicitedSwap(t *testing.T) {
	d := New(Rules, Config{Window: 1, Hysteresis: 4})
	d.Observe(win("swap", 0, 0, buildMix), "core2") // advised vector
	for i := 1; i < 4; i++ {
		if ev, err := d.Observe(winK("swap", 0, i, adt.KindSet, queryMix), "core2"); err != nil || ev != nil {
			t.Fatalf("unsolicited swap raised event: ev=%v err=%v", ev, err)
		}
	}
	st, ok := d.Status("swap#0")
	if !ok || st.Current != adt.KindSet || st.Kind != adt.KindSet {
		t.Fatalf("status after unsolicited swap: %+v", st)
	}
	if st.Events != 0 {
		t.Fatalf("unsolicited swap counted as drift: %+v", st)
	}
}

// TestStatusLookupDoesNotAllocate guards the direct-map-read fast path: a
// single-key Status must not snapshot and sort the whole instance table.
func TestStatusLookupDoesNotAllocate(t *testing.T) {
	d := New(Rules, Config{Window: 1, Hysteresis: 1})
	for i := 0; i < 256; i++ {
		d.Observe(win("alloc", i, 0, buildMix), "core2")
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, ok := d.Status("alloc#128"); !ok {
			t.Fatal("instance missing")
		}
	}); n != 0 {
		t.Fatalf("Status allocated %.0f times per lookup", n)
	}
}

func BenchmarkStatusLookup(b *testing.B) {
	d := New(Rules, Config{Window: 1, Hysteresis: 1})
	for i := 0; i < 1024; i++ {
		d.Observe(win("bench", i, 0, buildMix), "core2")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Status("bench#512")
	}
}

func TestDetectorSuggesterErrorKeepsTimeline(t *testing.T) {
	boom := errors.New("no model")
	fail := func(p *profile.Profile, arch string) (core.Suggestion, error) {
		return core.Suggestion{}, boom
	}
	d := New(fail, Config{Window: 1, Hysteresis: 1})
	_, err := d.Observe(win("e", 0, 0, buildMix), "core2")
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	st, ok := d.Status("e#0")
	if !ok || st.Windows != 1 || st.Advised {
		t.Fatalf("window should be recorded despite the error: %+v", st)
	}
}

// TestDetectorBaselineActualFiresOnInitialMismatch: with BaselineActual the
// baseline is the backend actually running, so advice that disagrees from
// the very first evaluation is confirmed through the normal hysteresis and
// fired — the adaptive container's contract. Without the flag the same
// stream stays silent (pure drift detection).
func TestDetectorBaselineActualFiresOnInitialMismatch(t *testing.T) {
	// A find-heavy vector: the rules advise hash_set from window one.
	feed := func(d *Detector) []Event {
		for seq := 0; seq < 6; seq++ {
			if _, err := d.Observe(win("ctx", 0, seq, queryMix), "core2"); err != nil {
				t.Fatal(err)
			}
		}
		return d.Events()
	}

	plain := feed(New(Rules, Config{Window: 2, Hysteresis: 2}))
	if len(plain) != 0 {
		t.Fatalf("pure detection fired on an initial mismatch: %v", plain)
	}

	evs := feed(New(Rules, Config{Window: 2, Hysteresis: 2, BaselineActual: true}))
	if len(evs) != 1 {
		t.Fatalf("events = %v, want exactly one", evs)
	}
	if evs[0].From != adt.KindVector || evs[0].To != adt.KindHashSet {
		t.Fatalf("event %v -> %v, want vector -> hash_set", evs[0].From, evs[0].To)
	}
}
