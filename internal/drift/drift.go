// Package drift watches per-instance window timelines for phase changes:
// moments where the container a workload *should* use stops matching the
// advice the run started with. Brainy's end-of-run analysis necessarily
// blends a whole execution into one verdict; an application with a build
// phase (append-heavy, vector-friendly) followed by a query phase
// (find-heavy, hash-friendly) deserves to know that its best container
// changed mid-run. The detector re-runs a Suggester over a sliding blend of
// recent snapshot windows and raises an Event when the advice diverges —
// with hysteresis, so one noisy window does not flap the verdict.
package drift

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/opstats"
	"repro/internal/profile"
)

// Config tunes a Detector. The zero value is usable: defaults fill in at
// New.
type Config struct {
	// Window is how many recent snapshot windows blend into one evaluation
	// profile (default 4). A larger blend smooths noise but sees phase
	// shifts later.
	Window int
	// Hysteresis is how many consecutive evaluations must agree on a *new*
	// advice before the detector raises a drift event (default 2). One
	// divergent window is noise; H in a row is a phase.
	Hysteresis int
	// MinOps skips evaluation while the blended windows cover fewer than
	// this many interface invocations (default 1 — evaluate always).
	MinOps uint64
	// MinConfidence ignores verdicts below this model confidence; an
	// ignored verdict neither advances nor resets a streak.
	MinConfidence float64
	// BaselineActual measures divergence from the backend the instance is
	// actually running instead of from the first advice. The default
	// (false) is pure drift detection: the first advice becomes the
	// baseline silently, and only later *changes* fire events. A consumer
	// that acts on events — the adaptive container — sets this so advice
	// that disagrees with reality from the very first evaluation is also
	// confirmed (through the same hysteresis) and raised.
	BaselineActual bool
	// Events, when non-nil, is incremented once per drift event — wire it
	// to the telemetry registry's brainy_drift_events_total.
	Events *opstats.Counter
	// OnEvent, when non-nil, runs synchronously for every drift event,
	// after internal state has been updated.
	OnEvent func(Event)
}

func (c Config) withDefaults() Config {
	if c.Window < 1 {
		c.Window = 4
	}
	if c.Hysteresis < 1 {
		c.Hysteresis = 2
	}
	if c.MinOps < 1 {
		c.MinOps = 1
	}
	return c
}

// Event is one confirmed phase drift: the advised container for an
// instance changed and stayed changed for Hysteresis evaluations.
type Event struct {
	InstanceKey string   `json:"instance_key"`
	Context     string   `json:"context"`
	Instance    int      `json:"instance"`
	Seq         int      `json:"window_seq"` // window at which the drift was confirmed
	From        adt.Kind `json:"from"`       // previously advised kind
	To          adt.Kind `json:"to"`         // newly advised kind
	Confidence  float64  `json:"confidence"` // confidence of the confirming verdict
	Votes       int      `json:"votes"`      // consecutive agreeing verdicts that confirmed it
}

// String renders the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("drift %s @ window %d: %s -> %s (confidence %.2f)",
		e.InstanceKey, e.Seq, e.From, e.To, e.Confidence)
}

// Status is the detector's current view of one instance, shaped for
// dashboards: where the advice started, where it is now, and how unsettled
// it looks.
type Status struct {
	InstanceKey string   `json:"instance_key"`
	Context     string   `json:"context"`
	Instance    int      `json:"instance"`
	Kind        adt.Kind `json:"kind"`    // what the instance actually is
	Windows     int      `json:"windows"` // windows observed
	Ops         uint64   `json:"ops"`     // interface invocations observed
	Initial     adt.Kind `json:"initial"` // first advised kind
	Current     adt.Kind `json:"current"` // currently advised kind
	Confidence  float64  `json:"confidence"`
	Streak      int      `json:"streak"` // consecutive divergent verdicts pending
	Events      int      `json:"events"` // drift events raised for this instance
	Advised     bool     `json:"advised"`
}

// Drifted reports whether the advice ever moved off its initial value.
func (s Status) Drifted() bool { return s.Events > 0 }

// instState is the per-timeline sliding window and hysteresis machine.
type instState struct {
	recent  []profile.WindowRecord // ring of the last Config.Window records
	next    int
	windows int
	ops     uint64

	advised    bool
	initial    adt.Kind
	current    adt.Kind
	confidence float64
	pending    adt.Kind
	streak     int
	events     int

	context  string
	instance int
	kind     adt.Kind
}

// Detector runs a Suggester over sliding blends of window records, one
// state machine per instance timeline. Safe for concurrent use.
type Detector struct {
	suggest core.Suggester
	cfg     Config

	mu   sync.Mutex
	inst map[string]*instState
	evs  []Event
}

// New builds a detector around a Suggester (Brainy.Suggest of a loaded
// model set, or the deterministic Rules).
func New(suggest core.Suggester, cfg Config) *Detector {
	if suggest == nil {
		panic("drift: New with nil suggester")
	}
	return &Detector{suggest: suggest, cfg: cfg.withDefaults(), inst: map[string]*instState{}}
}

// Observe feeds one window record into its instance's timeline and returns
// the drift event it confirmed, if any. A nil event with a nil error is the
// common case: advice unchanged (or still settling inside the hysteresis
// streak). The error surfaces Suggester failures — typically a missing
// model for the record's container kind — after the window has still been
// recorded, so timelines keep accumulating across advisory gaps.
func (d *Detector) Observe(rec *profile.WindowRecord, arch string) (*Event, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	key := rec.InstanceKey()
	st := d.inst[key]
	if st == nil {
		st = &instState{
			recent:   make([]profile.WindowRecord, 0, d.cfg.Window),
			context:  rec.Context,
			instance: rec.Instance,
			kind:     rec.Kind,
		}
		d.inst[key] = st
	}
	if len(st.recent) < cap(st.recent) {
		st.recent = append(st.recent, *rec)
	} else {
		st.recent[st.next] = *rec
		st.next = (st.next + 1) % cap(st.recent)
	}
	if rec.Kind != st.kind {
		// The instance's backend changed mid-timeline. Either we asked for
		// it (the record's kind matches the advice we raised an event for)
		// or the host swapped on its own; in both cases the blended history
		// describes a container that no longer exists, so restart the blend
		// from this window and clear any in-flight streak. When the new kind
		// matches current advice this is the migration completing — not a
		// new divergence — so the state machine settles instead of firing.
		st.recent = st.recent[:0]
		st.recent = append(st.recent, *rec)
		st.next = 0
		st.streak = 0
		st.pending = rec.Kind
		if st.advised && rec.Kind != st.current {
			// Unsolicited swap: re-baseline advice on reality so the next
			// divergence is measured from the backend actually running.
			st.current = rec.Kind
		}
		st.kind = rec.Kind
	}
	st.windows++
	st.ops += rec.Ops()

	blended := st.blend()
	if blended.Stats.TotalCalls() < d.cfg.MinOps {
		return nil, nil
	}
	sug, err := d.suggest(&blended, arch)
	if err != nil {
		return nil, fmt.Errorf("drift: advising %s: %w", key, err)
	}
	if d.cfg.MinConfidence > 0 && sug.Confidence < d.cfg.MinConfidence {
		return nil, nil // too unsure to move the state machine either way
	}
	if !st.advised {
		st.advised = true
		st.initial = sug.Suggested
		st.current = sug.Suggested
		st.confidence = sug.Confidence
		if !d.cfg.BaselineActual {
			return nil, nil
		}
		// Baseline on the running backend: a first advice that already
		// disagrees with the instance's actual kind is a divergence to
		// confirm through the streak below, not a silent baseline.
		st.current = st.kind
	}
	st.confidence = sug.Confidence
	if sug.Suggested == st.current {
		st.streak = 0
		return nil, nil
	}
	if sug.Suggested == st.pending {
		st.streak++
	} else {
		st.pending = sug.Suggested
		st.streak = 1
	}
	if st.streak < d.cfg.Hysteresis {
		return nil, nil
	}
	ev := Event{
		InstanceKey: key,
		Context:     st.context,
		Instance:    st.instance,
		Seq:         rec.Seq,
		From:        st.current,
		To:          st.pending,
		Confidence:  sug.Confidence,
		Votes:       st.streak,
	}
	st.current = st.pending
	st.streak = 0
	st.events++
	d.evs = append(d.evs, ev)
	if d.cfg.Events != nil {
		d.cfg.Events.Inc()
	}
	if d.cfg.OnEvent != nil {
		d.cfg.OnEvent(ev)
	}
	return &ev, nil
}

// blend merges the retained windows into one evaluation profile: software
// and hardware features accumulate across the blend, identity and state
// fields come from the newest window.
func (st *instState) blend() profile.Profile {
	newest := st.recent[(st.next+len(st.recent)-1)%len(st.recent)]
	out := newest.Profile
	for i := range st.recent {
		if i == (st.next+len(st.recent)-1)%len(st.recent) {
			continue
		}
		w := &st.recent[i]
		out.Stats.Add(w.Stats)
		out.HW = out.HW.Add(w.HW)
		out.Cycles += w.Cycles
	}
	return out
}

// Events returns every drift event observed so far, in confirmation order.
func (d *Detector) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Event, len(d.evs))
	copy(out, d.evs)
	return out
}

// Statuses returns the per-instance state, sorted by instance key — the
// dashboard's row set.
func (d *Detector) Statuses() []Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Status, 0, len(d.inst))
	for key, st := range d.inst {
		out = append(out, st.status(key))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].InstanceKey < out[j].InstanceKey })
	return out
}

// Status returns one instance's state by key. A direct map read under the
// mutex: the dashboard polls this per row, so it must not pay the
// snapshot-and-sort cost of Statuses.
func (d *Detector) Status(key string) (Status, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.inst[key]
	if st == nil {
		return Status{}, false
	}
	return st.status(key), true
}

func (st *instState) status(key string) Status {
	return Status{
		InstanceKey: key,
		Context:     st.context,
		Instance:    st.instance,
		Kind:        st.kind,
		Windows:     st.windows,
		Ops:         st.ops,
		Initial:     st.initial,
		Current:     st.current,
		Confidence:  st.confidence,
		Streak:      st.streak,
		Events:      st.events,
		Advised:     st.advised,
	}
}
