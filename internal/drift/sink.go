package drift

import (
	"sync/atomic"

	"repro/internal/profile"
)

// DetectorSink adapts a Detector to profile.WindowSink so it can sit
// directly behind a container's window emission (usually fanned out with
// profile.MultiWindowSink next to a ring or exporter).
type DetectorSink struct {
	d     *Detector
	arch  string
	skips atomic.Uint64
}

// Sink returns a WindowSink feeding the detector, evaluating every window
// on the named architecture.
func (d *Detector) Sink(arch string) *DetectorSink {
	return &DetectorSink{d: d, arch: arch}
}

// EmitWindow implements profile.WindowSink. Suggester errors (no model for
// the window's kind) are counted, not propagated — a sink has nowhere to
// return them, and the timeline keeps accumulating regardless.
func (s *DetectorSink) EmitWindow(w *profile.WindowRecord) {
	if _, err := s.d.Observe(w, s.arch); err != nil {
		s.skips.Add(1)
	}
}

// Skipped reports how many windows the suggester could not advise on.
func (s *DetectorSink) Skipped() uint64 { return s.skips.Load() }
