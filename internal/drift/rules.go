package drift

import (
	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/opstats"
	"repro/internal/profile"
)

// Rules is a deterministic, model-free Suggester built from the same
// asymptotic arguments as the perflint baseline: it reads the window's
// operation mix and picks the textbook-best container for that mix. It
// exists so drift detection has a dependency-free advisor — CI smoke runs,
// the phasedemo example, and brainy-serve instances without trained models
// all get reproducible verdicts. It intentionally ignores hardware features
// and the arch argument; use Brainy.Suggest when trained models are
// available.
func Rules(p *profile.Profile, arch string) (core.Suggestion, error) {
	s := &p.Stats
	total := float64(s.TotalCalls())
	if total == 0 {
		total = 1
	}
	frac := func(ops ...opstats.Op) float64 {
		var n uint64
		for _, op := range ops {
			n += s.Count[op]
		}
		return float64(n) / total
	}
	finds := frac(opstats.OpFind)
	scans := frac(opstats.OpIterate)
	appends := frac(opstats.OpPushBack, opstats.OpInsert)
	fronts := frac(opstats.OpPushFront, opstats.OpPopFront)
	random := frac(opstats.OpAt)

	// A pointer-chasing backend whose working set has outgrown the caches:
	// every probe step is a dependent miss, which is exactly what the flat
	// arena-backed layouts exist to avoid. The thresholds are deliberately
	// high so small containers (where per-node allocation is harmless and
	// migration churn is not) never trip them.
	missHeavy := p.HW.L1MissRate() >= 0.25 && s.MaxLen >= 1<<12

	// Decide the dominant access pattern; ties break toward keeping the
	// current kind, so the advice only moves on a clear signal.
	kind := p.Kind
	conf := 0.5
	switch {
	case finds >= 0.5:
		// Lookup-heavy. A linear scan per find is the classic misuse the
		// paper opens with; ordered workloads get a tree, unordered a hash.
		if p.OrderAware {
			kind, conf = adt.KindSet, finds
		} else {
			kind, conf = adt.KindHashSet, finds
		}
		if p.Kind.IsAssociative() {
			kind = p.Kind // already O(log n) or O(1); no reason to churn
		}
		if missHeavy && !p.Kind.IsFlat() {
			// Lookup-heavy AND cache-bound: upgrade to the flat counterpart
			// of whatever family the order constraint dictates.
			switch {
			case p.Kind.IsMapKind():
				if p.OrderAware {
					kind = adt.KindFlatBTreeMap
				} else {
					kind = adt.KindFlatHashMap
				}
			case p.OrderAware:
				kind = adt.KindFlatBTreeSet
			default:
				kind = adt.KindFlatHashSet
			}
			conf = finds
		}
	case fronts >= 0.3 && p.Kind == adt.KindVector:
		// Front insertion shifts the whole vector every call.
		kind, conf = adt.KindDeque, fronts+appends
	case scans+appends+random >= 0.6 && p.Kind != adt.KindVector:
		// Append-then-scan with little searching: contiguous wins on
		// locality, and at() is O(1) only for vector/deque.
		kind, conf = adt.KindVector, scans+appends+random
	}
	if conf > 1 {
		conf = 1
	}
	sug := core.Suggestion{
		Context:    p.Context,
		Original:   p.Kind,
		Suggested:  kind,
		Confidence: conf,
		Replace:    kind != p.Kind,
	}
	n := int(s.MaxLen)
	sug.MemOriginal = adt.EstimatedBytes(p.Kind, n, s.ElemSize)
	sug.MemSuggested = adt.EstimatedBytes(kind, n, s.ElemSize)
	if sug.MemOriginal > 0 {
		sug.MemDeltaPct = 100 * (float64(sug.MemSuggested) - float64(sug.MemOriginal)) / float64(sug.MemOriginal)
	}
	return sug, nil
}
