#!/usr/bin/env python3
"""Poll a brainy-serve /v1/health endpoint until it reports an expected state.

Usage:
    check_health.py --url http://host:port/v1/health --expect degraded \
        [--objective advise-p99] [--timeout 20] [--out health.json]

Polls the endpoint (every --interval seconds, accepting both 200 and 503
responses — the body carries the verdict either way) until:

  * the top-level status equals --expect, and
  * when --objective is given, that named SLO objective individually reports
    the same state (and carries a non-empty burn-rate reason whenever the
    state is not ok).

On success the matching body is written to --out (when given) and the
observed transition is printed; exit 0. If the deadline passes first, the
last body seen is dumped for the CI log and the exit code is 1 — so a health
verdict that never flips (or never recovers) fails the build loudly.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def fetch(url):
    """GET url and decode the JSON body, treating 503 as a valid answer."""
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return json.load(resp)
    except urllib.error.HTTPError as e:
        if e.code == 503:
            return json.load(e)
        raise


def objective(body, name):
    for obj in (body.get("slo") or {}).get("objectives", []):
        if obj.get("name") == name:
            return obj
    return None


def matches(body, expect, objective_name):
    if body.get("status") != expect:
        return False
    if objective_name:
        obj = objective(body, objective_name)
        if obj is None:
            return False
        # "draining" is a server-level verdict; objectives never report it.
        want = expect if expect in ("ok", "degraded", "critical") else "ok"
        if obj.get("state") != want:
            return False
        if want != "ok" and not obj.get("reason"):
            return False
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--url", required=True, help="the /v1/health URL to poll")
    ap.add_argument("--expect", required=True,
                    choices=["ok", "degraded", "critical", "draining"],
                    help="top-level status to wait for")
    ap.add_argument("--objective",
                    help="SLO objective that must individually report the state")
    ap.add_argument("--timeout", type=float, default=30.0,
                    help="seconds to keep polling (default 30)")
    ap.add_argument("--interval", type=float, default=0.2,
                    help="poll cadence in seconds (default 0.2)")
    ap.add_argument("--out", help="write the matching health body here")
    args = ap.parse_args()

    deadline = time.monotonic() + args.timeout
    last, states = None, []
    while time.monotonic() < deadline:
        try:
            body = fetch(args.url)
        except Exception as e:  # noqa: BLE001 - transient during (re)starts
            print(f"poll error (retrying): {e}", file=sys.stderr)
            time.sleep(args.interval)
            continue
        last = body
        if not states or states[-1] != body.get("status"):
            states.append(body.get("status"))
        if matches(body, args.expect, args.objective):
            if args.out:
                with open(args.out, "w") as f:
                    json.dump(body, f, indent=2)
            target = args.expect
            if args.objective:
                target += f" ({args.objective})"
            print(f"OK: health reached {target} "
                  f"(observed states: {' -> '.join(states)})")
            return 0
        time.sleep(args.interval)

    print(f"FAIL: health never reached {args.expect}"
          + (f" on objective {args.objective}" if args.objective else "")
          + f" within {args.timeout:.0f}s "
          f"(observed states: {' -> '.join(states) or 'none'})",
          file=sys.stderr)
    if last is not None:
        json.dump(last, sys.stderr, indent=2)
        print(file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
