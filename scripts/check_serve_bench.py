#!/usr/bin/env python3
"""Gate a brainy-loadgen report against the committed BENCH_serve.json.

Usage:
    check_serve_bench.py --result report.json --baseline BENCH_serve.json

Reads the ci_gate block of the newest BENCH_serve.json entry and enforces,
in order:

  1. error rate: failed requests must stay under --max-error-rate;
  2. absolute floor: ops_per_sec >= floor_ops_per_sec, the never-below
     smoke threshold that catches a serving path that fell off a cliff;
  3. regression gate: ops_per_sec >= baseline_ops_per_sec * (1 - max_regression),
     the >20% throughput-regression gate against the committed baseline.

Exit code 0 when every check passes, 1 otherwise; the verdict is printed
either way so CI logs show the measured-vs-required numbers.
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--result", required=True, help="brainy-loadgen JSON report")
    ap.add_argument("--baseline", required=True, help="committed BENCH_serve.json")
    ap.add_argument("--max-error-rate", type=float, default=0.01,
                    help="tolerated failed-request fraction (default 0.01)")
    args = ap.parse_args()

    with open(args.result) as f:
        result = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    entries = baseline.get("entries", [])
    if not entries:
        print("FAIL: baseline has no entries", file=sys.stderr)
        return 1
    gate = entries[-1].get("ci_gate")
    if not gate:
        print("FAIL: newest baseline entry has no ci_gate block", file=sys.stderr)
        return 1

    ops = result.get("ops", 0)
    errors = result.get("errors", 0)
    ops_per_sec = result.get("ops_per_sec", 0.0)
    floor = gate["floor_ops_per_sec"]
    base = gate["baseline_ops_per_sec"]
    max_regression = gate["max_regression"]
    required = base * (1 - max_regression)

    print(f"measured: {ops_per_sec:.0f} ops/s, {errors}/{ops} errors, "
          f"p50 {result.get('latency_p50_ms', 0):.2f}ms "
          f"p99 {result.get('latency_p99_ms', 0):.2f}ms, "
          f"hit rate {result.get('cache_hit_rate', -1):.3f}")
    print(f"gate: floor {floor} ops/s, baseline {base} ops/s "
          f"(max regression {max_regression:.0%} -> required {required:.0f} ops/s)")

    failures = []
    if ops <= 0:
        failures.append("no operations completed")
    error_rate = errors / ops if ops else 1.0
    if error_rate > args.max_error_rate:
        failures.append(f"error rate {error_rate:.3f} exceeds {args.max_error_rate}")
    if ops_per_sec < floor:
        failures.append(f"throughput {ops_per_sec:.0f} ops/s below absolute floor {floor}")
    if ops_per_sec < required:
        failures.append(f"throughput {ops_per_sec:.0f} ops/s regressed >{max_regression:.0%} "
                        f"vs baseline {base} (required {required:.0f})")

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
