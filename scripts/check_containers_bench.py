#!/usr/bin/env python3
"""Gate a containersbench report against the committed BENCH_containers.json.

Usage:
    check_containers_bench.py --result report.json --baseline BENCH_containers.json

Reads the ci_gate block of the newest BENCH_containers.json entry and
enforces, for every measured working-set size >= min_size, that each
pointer-vs-flat find-cycle ratio named in min_ratios stays at or above its
floor. The ratios come straight from the report's find_ratios block
(simulated Core2 cycles, so they are bit-deterministic — any drop is a real
event-model or layout regression, not measurement noise).

Exit code 0 when every check passes, 1 otherwise; the verdict is printed
either way so CI logs show the measured-vs-required numbers.
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--result", required=True, help="containersbench JSON report")
    ap.add_argument("--baseline", required=True, help="committed BENCH_containers.json")
    args = ap.parse_args()

    with open(args.result) as f:
        result = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    entries = baseline.get("entries", [])
    if not entries:
        print("FAIL: baseline has no entries", file=sys.stderr)
        return 1
    gate = entries[-1].get("ci_gate")
    if not gate:
        print("FAIL: newest baseline entry has no ci_gate block", file=sys.stderr)
        return 1

    min_size = gate["min_size"]
    min_ratios = gate["min_ratios"]
    ratios = result.get("find_ratios", {})

    gated_sizes = [int(s) for s in ratios if int(s) >= min_size]
    if not gated_sizes:
        print(f"FAIL: report has no working-set size >= {min_size}", file=sys.stderr)
        return 1

    failures = []
    for size in sorted(gated_sizes):
        measured = ratios[str(size)]
        for pair, floor in min_ratios.items():
            got = measured.get(pair)
            if got is None:
                failures.append(f"n={size}: ratio {pair} missing from report")
                continue
            verdict = "ok" if got >= floor else "FAIL"
            print(f"n={size}: {pair} = {got:.2f} (floor {floor:.2f}) {verdict}")
            if got < floor:
                failures.append(
                    f"n={size}: {pair} = {got:.2f} below floor {floor:.2f}")

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
