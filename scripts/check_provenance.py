#!/usr/bin/env python3
"""Check that a server's fleet rollup reconciles exactly with a loadgen run.

Usage:
    check_provenance.py --report report.json --rollup rollup.json

The loadgen run must have been the only traffic against a fresh server with
-warmup 0: under those conditions every counted client op was fully served
and every served op was counted, so the totals must match to the unit:

  1. the report recorded zero errors;
  2. rollup advise_decisions == report advise_ops (loadgen sends
     single-profile advise bodies: one decision per op);
  3. rollup windows == report profile_ops (one snapshot window per op);
  4. the report links at least one p99 exemplar, and the journal totals on
     the rollup show the flight recorder saw the traffic.

On success the first exemplar's request ID is printed on the last line, for
the caller to round-trip through brainy-explain. Exit 0 when every check
passes, 1 otherwise.
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--report", required=True, help="brainy-loadgen JSON report")
    ap.add_argument("--rollup", required=True, help="captured GET /v1/rollup body")
    args = ap.parse_args()

    with open(args.report) as f:
        rep = json.load(f)
    with open(args.rollup) as f:
        roll = json.load(f)

    failures = []

    def check(name, ok, detail):
        print(f"{'ok  ' if ok else 'FAIL'} {name}: {detail}")
        if not ok:
            failures.append(name)

    check("errors", rep["errors"] == 0, f"report errors = {rep['errors']}")
    check(
        "advise reconciliation",
        roll["advise_decisions"] == rep["advise_ops"],
        f"rollup advise_decisions = {roll['advise_decisions']}, "
        f"report advise_ops = {rep['advise_ops']}",
    )
    check(
        "window reconciliation",
        roll["windows"] == rep["profile_ops"],
        f"rollup windows = {roll['windows']}, "
        f"report profile_ops = {rep['profile_ops']}",
    )
    exemplars = rep.get("p99_exemplars") or []
    check("p99 exemplars", len(exemplars) > 0, f"{len(exemplars)} linked")
    check(
        "flight recorder",
        roll["decisions_journaled"] > 0,
        f"decisions_journaled = {roll['decisions_journaled']}",
    )

    if failures:
        print(f"provenance check FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(exemplars[0]["request_id"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
